// Package remote crosses the machine boundary for distributed
// campaigns: an HTTP/JSON transport that plugs a remote launcher into
// the shard supervisor's StartFunc seam. A worker agent registers with
// the coordinator, receives hash-pinned shard manifests (seeded with
// the coordinator's journal mirror, so a replacement worker resumes a
// lost worker's units without re-measuring completed observations),
// runs the journaled executor locally, and ships journal bytes back as
// CRC32-framed chunks with resumable offsets. The coordinator mirrors
// every shard directory — heartbeat file included — so the existing
// heartbeat supervision (crash, stall, and now partition detection)
// works across the wire unchanged.
//
// The failure model is adversarial networking, not adversarial peers:
// messages are dropped, delayed, duplicated, and partitioned (the
// seeded FaultTransport injects exactly those), and a worker presumed
// dead may come back and keep talking. Every mutating message is
// therefore fenced by (sweep hash, shard, attempt): the coordinator
// refuses chunks, heartbeats, and completion claims from any attempt
// other than the one it currently supervises — Rule 9's drift refusal
// extended to attempt identity, so a zombie worker's late bytes can
// never corrupt a reassigned shard's mirror. The invariant stays
// absolute: the merged report is byte-identical to the single-process
// run, or the loss is explicit.
package remote

import (
	"fmt"
	"hash/crc32"
	"strings"
	"time"

	"repro/internal/rules"
	"repro/internal/shard"

	"repro/internal/rng"
)

// ProtocolVersion identifies the wire protocol; a version mismatch at
// registration is refused rather than negotiated — a drifted protocol
// is a drifted experiment transport (Rule 9).
const ProtocolVersion = 1

// MaxChunk bounds one chunk frame's payload. Larger ships are split;
// larger received frames are refused.
const MaxChunk = 256 << 10

// Coordinator endpoints (worker → coordinator).
const (
	PathRegister  = "/v1/register"
	PathChunk     = "/v1/chunk"
	PathHeartbeat = "/v1/heartbeat"
	PathDone      = "/v1/done"
	PathFail      = "/v1/fail"
)

// Worker endpoints (coordinator → worker).
const (
	PathAssign = "/v1/assign"
	PathCancel = "/v1/cancel"
	PathStatus = "/v1/status"
)

// RegisterRequest announces a worker to the coordinator: where to reach
// it and the Rule 9 record of the host it measures on. The environment
// fingerprint is the worker's identity for merge-time stratification —
// two workers on one host share it, two hosts never do.
type RegisterRequest struct {
	Protocol       int               `json:"protocol"`
	Addr           string            `json:"addr"` // worker base URL, e.g. http://10.0.0.2:8701
	Hostname       string            `json:"hostname"`
	Env            rules.Environment `json:"env"`
	EnvFingerprint string            `json:"env_fingerprint"`
}

// Validate rejects registrations the coordinator must not accept.
func (r RegisterRequest) Validate() error {
	if r.Protocol != ProtocolVersion {
		return fmt.Errorf("remote: protocol v%d, coordinator speaks v%d", r.Protocol, ProtocolVersion)
	}
	if !strings.HasPrefix(r.Addr, "http://") && !strings.HasPrefix(r.Addr, "https://") {
		return fmt.Errorf("remote: worker addr %q is not an http(s) URL", r.Addr)
	}
	if r.EnvFingerprint == "" {
		return fmt.Errorf("remote: registration carries no environment fingerprint (Rule 9)")
	}
	return nil
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	WorkerID  string `json:"worker_id"`
	SweepHash string `json:"sweep_hash"`
	SweepName string `json:"sweep_name,omitempty"`
}

// FileState carries one mirrored file whole — the seed a newly assigned
// worker starts from, so reassignment resumes journals instead of
// re-measuring.
type FileState struct {
	Path string `json:"path"`
	Data []byte `json:"data"`
	CRC  uint32 `json:"crc"`
}

// AssignRequest hands one shard attempt to a worker: the hash-pinned
// shard manifest, the fencing attempt number, and the coordinator's
// current mirror of the shard's files.
type AssignRequest struct {
	SweepHash string         `json:"sweep_hash"`
	Shard     int            `json:"shard"`
	Attempt   int            `json:"attempt"`
	Manifest  shard.Manifest `json:"manifest"`
	Seed      []FileState    `json:"seed,omitempty"`
}

// AssignResponse acknowledges (or refuses) an assignment.
type AssignResponse struct {
	OK      bool   `json:"ok"`
	Refused string `json:"refused,omitempty"`
}

// ChunkFrame ships one span of one shard file from worker to
// coordinator. Off is the absolute file offset of Data; CRC is
// crc32.IEEE over Data alone, so a torn or bit-flipped frame is refused
// before any byte lands in the mirror. A Truncate frame (empty Data)
// shrinks the mirror to Off — sent once per journal at attempt start,
// because a resumed executor drops the torn tail a crash left and the
// mirror must drop it too before the divergent continuation arrives.
type ChunkFrame struct {
	WorkerID  string `json:"worker_id"`
	SweepHash string `json:"sweep_hash"`
	Shard     int    `json:"shard"`
	Attempt   int    `json:"attempt"`
	Path      string `json:"path"`
	Off       int64  `json:"off"`
	Data      []byte `json:"data,omitempty"`
	CRC       uint32 `json:"crc"`
	Truncate  bool   `json:"truncate,omitempty"`
}

// Validate checks frame integrity and path safety. It is the only gate
// between wire bytes and mirror writes, so it refuses everything it
// does not positively recognize.
func (f ChunkFrame) Validate() error {
	if !ValidChunkPath(f.Path) {
		return fmt.Errorf("remote: chunk path %q not in the shard file allowlist", f.Path)
	}
	if f.Off < 0 {
		return fmt.Errorf("remote: negative chunk offset %d", f.Off)
	}
	if f.Shard < 0 {
		return fmt.Errorf("remote: negative shard index %d", f.Shard)
	}
	if f.Attempt < 1 {
		return fmt.Errorf("remote: attempt %d below 1", f.Attempt)
	}
	if len(f.Data) > MaxChunk {
		return fmt.Errorf("remote: chunk of %d bytes exceeds MaxChunk %d", len(f.Data), MaxChunk)
	}
	if f.Truncate && len(f.Data) > 0 {
		return fmt.Errorf("remote: truncate frame carries %d data bytes", len(f.Data))
	}
	if got := crc32.ChecksumIEEE(f.Data); got != f.CRC {
		return fmt.Errorf("remote: chunk CRC mismatch (frame %08x, payload %08x)", f.CRC, got)
	}
	return nil
}

// ChunkResponse tells the worker where the mirror actually stands.
// ResumeOff is authoritative: a duplicated chunk (offset already
// covered) is acknowledged without rewriting, a gap (offset past the
// mirror) is refused, and in both cases the worker continues shipping
// from ResumeOff — re-shipping only the suffix after a reconnect.
type ChunkResponse struct {
	OK        bool   `json:"ok"`
	ResumeOff int64  `json:"resume_off"`
	Refused   string `json:"refused,omitempty"`
	Stale     bool   `json:"stale,omitempty"` // fenced out: stop shipping this attempt
}

// HeartbeatMsg forwards the executor's local heartbeat across the wire;
// the coordinator writes it into the mirrored shard directory, where
// the supervisor's liveness poll picks it up exactly as if the executor
// were local. A partition therefore looks like a stall — which is the
// correct diagnosis: no evidence of progress is no evidence.
type HeartbeatMsg struct {
	WorkerID  string          `json:"worker_id"`
	SweepHash string          `json:"sweep_hash"`
	Shard     int             `json:"shard"`
	Attempt   int             `json:"attempt"`
	HB        shard.Heartbeat `json:"hb"`
}

// FileSum is one entry of a completion inventory: the full-file CRC the
// coordinator re-verifies before trusting a shard as shipped.
type FileSum struct {
	Path string `json:"path"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc"`
}

// DoneRequest claims shard completion: the executor's done record plus
// the complete file inventory. The coordinator writes done.json only
// after every mirrored file matches the inventory byte-for-byte — the
// completion barrier that makes "done" mean "fully shipped".
type DoneRequest struct {
	WorkerID  string          `json:"worker_id"`
	SweepHash string          `json:"sweep_hash"`
	Shard     int             `json:"shard"`
	Attempt   int             `json:"attempt"`
	Done      shard.ShardDone `json:"done"`
	Files     []FileSum       `json:"files"`
}

// DoneResponse acknowledges completion or names what is still missing;
// Mirror carries the coordinator's current size per mismatched file so
// the worker re-ships only the missing suffixes.
type DoneResponse struct {
	OK      bool      `json:"ok"`
	Refused string    `json:"refused,omitempty"`
	Stale   bool      `json:"stale,omitempty"`
	Mirror  []FileSum `json:"mirror,omitempty"`
}

// FailRequest reports a failed executor attempt (setup error, drift
// refusal, interrupted unit) so the supervisor reassigns without
// waiting for a heartbeat timeout.
type FailRequest struct {
	WorkerID  string `json:"worker_id"`
	SweepHash string `json:"sweep_hash"`
	Shard     int    `json:"shard"`
	Attempt   int    `json:"attempt"`
	Error     string `json:"error"`
}

// CancelRequest fences off one attempt on the worker side.
type CancelRequest struct {
	SweepHash string `json:"sweep_hash"`
	Shard     int    `json:"shard"`
	Attempt   int    `json:"attempt"`
}

// shardFiles are the per-unit campaign files a worker ships. The
// heartbeat travels on its own message, and done.json is written only
// by the coordinator after inventory verification.
var shardFiles = map[string]bool{
	"manifest.json": true, // write-once (atomic rename)
	"journal.jsonl": true, // append-only; may truncate once at resume
	"result.json":   true, // write-once completion sentinel
}

// ValidChunkPath accepts exactly the relative paths a worker may write
// into a mirrored shard directory: units/<safe-id>/<campaign file>.
func ValidChunkPath(p string) bool {
	parts := strings.Split(p, "/")
	if len(parts) != 3 || parts[0] != "units" {
		return false
	}
	return safeID(parts[1]) && shardFiles[parts[2]]
}

// ValidSeedPath additionally accepts the heartbeat file, which a seed
// carries so the heartbeat sequence stays monotonic across workers.
func ValidSeedPath(p string) bool {
	return p == shard.HeartbeatFile || ValidChunkPath(p)
}

// safeID mirrors the shard package's directory-name discipline.
func safeID(id string) bool {
	if id == "" || id[0] == '.' {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return true
}

// hash64 folds a string into the jitter seed.
func hash64(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SeededBackoff is the retry schedule of every network loop in this
// package: exponential growth from base, capped at ceiling, with
// deterministic jitter in [1, 1.5)× derived from (seed, key, try) — so
// tests reproduce the exact timing of a retry storm, and concurrent
// retriers with different keys decorrelate instead of thundering.
func SeededBackoff(seed uint64, key string, try int, base, ceiling time.Duration) time.Duration {
	if try < 1 {
		try = 1
	}
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if ceiling <= 0 {
		ceiling = 5 * time.Second
	}
	d := base
	for i := 1; i < try && d < ceiling; i++ {
		d *= 2
	}
	if d > ceiling {
		d = ceiling
	}
	frac := float64(rng.Mix64(seed^hash64(key)^uint64(try))>>11) / (1 << 53)
	return d + time.Duration(frac*float64(d)/2)
}
