package remote

import (
	"fmt"
	"os"
	"runtime"

	"repro/internal/campaign"
	"repro/internal/rules"
)

// HostEnv captures the Rule 9 record of the machine a worker measures
// on: the facts that distinguish one host from another in a distributed
// sweep. It is deliberately host-deterministic — the same machine
// always produces the same fingerprint, so stratification groups are
// stable across attempts and restarts.
func HostEnv() rules.Environment {
	host, _ := os.Hostname()
	return rules.Environment{
		Processor:        fmt.Sprintf("%s/%s, %d logical CPU(s)", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		RuntimeLibs:      runtime.Version(),
		MeasurementSetup: fmt.Sprintf("scibench worker on %s, journaled write-ahead", host),
		InputAndCode:     "scibench worker (repro module)",
		NotApplicable:    []string{"memory", "network", "compiler", "filesystem", "codeurl"},
	}
}

// Fingerprint hashes an environment the same way the merge fingerprints
// recorded unit environments.
func Fingerprint(env rules.Environment) (string, error) {
	return campaign.HashJSON(env)
}
