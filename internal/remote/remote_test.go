package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/rules"
	"repro/internal/shard"
)

// testEnv is the Rule 9 block every test unit records (the unit env is
// shared; host envs are what distinguish workers).
var testEnv = rules.Environment{
	Processor:        "simulated 64-rank cluster",
	Network:          "simulated fat-tree",
	InputAndCode:     "internal/remote tests",
	MeasurementSetup: "deterministic seeded measure source",
}

type unitCfg struct {
	Name string  `json:"name"`
	Base float64 `json:"base"`
}

// testRunner rebuilds the deterministic measurement for a unit; the
// same unit yields the same samples on every worker (the invariant the
// whole transport leans on). throttle slows samples so tests can cut a
// partition mid-unit; calls counts real measurements for resume
// assertions.
type testRunner struct {
	throttle time.Duration
	calls    *atomic.Int64
}

func (r testRunner) Setup(u shard.Unit) (campaign.Manifest, bench.Plan, func() (float64, error), error) {
	var cfg unitCfg
	if err := json.Unmarshal(u.Config, &cfg); err != nil {
		return campaign.Manifest{}, bench.Plan{}, nil, err
	}
	man, err := campaign.NewManifest(u.ID, u.Seed, cfg, nil, testEnv)
	if err != nil {
		return campaign.Manifest{}, bench.Plan{}, nil, err
	}
	rng := rand.New(rand.NewSource(int64(u.Seed)))
	measure := func() (float64, error) {
		if r.throttle > 0 {
			time.Sleep(r.throttle)
		}
		if r.calls != nil {
			r.calls.Add(1)
		}
		return cfg.Base * (1 + 0.05*rng.Float64()), nil
	}
	return man, bench.Plan{Warmup: 2, MinSamples: 12, Workers: 1}, measure, nil
}

func testFaultFP(t testing.TB) string {
	t.Helper()
	fp, err := campaign.HashJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func makeUnits(t testing.TB, k int) []shard.Unit {
	t.Helper()
	units := make([]shard.Unit, k)
	for i := range units {
		cfg := unitCfg{Name: fmt.Sprintf("cfg-%02d", i), Base: 100 + 10*float64(i)}
		raw, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := campaign.HashJSON(cfg)
		if err != nil {
			t.Fatal(err)
		}
		units[i] = shard.Unit{
			ID:         fmt.Sprintf("u%02d-%s", i, cfg.Name),
			Seed:       42 + uint64(i),
			ConfigHash: ch,
			Config:     raw,
		}
	}
	return units
}

func buildSweep(t testing.TB, dir string, k, n int) shard.SweepManifest {
	t.Helper()
	sw, err := shard.NewSweep("remote-sweep", makeUnits(t, k), testFaultFP(t), testEnv, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := shard.Create(dir, sw); err != nil {
		t.Fatal(err)
	}
	return sw
}

// referenceReport runs the identical sweep single-process and returns
// the canonical report bytes — what every distributed run must equal.
func referenceReport(t *testing.T, k int) []byte {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ref")
	sw := buildSweep(t, dir, k, 1)
	for i := range sw.Shards() {
		sd := filepath.Join(dir, shard.ShardDirName(i))
		if _, err := shard.ExecShard(context.Background(), sd, testRunner{}, shard.ExecOptions{}); err != nil {
			t.Fatalf("reference shard %d: %v", i, err)
		}
	}
	return mergedReport(t, dir)
}

func mergedReport(t *testing.T, dir string) []byte {
	t.Helper()
	rep, err := shard.Merge(dir)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// hostBEnv is a second, distinct Rule 9 host record so single-machine
// tests exercise genuine cross-host stratification.
func hostBEnv() rules.Environment {
	env := HostEnv()
	env.MeasurementSetup = "scibench worker on host-b (test double)"
	return env
}

// TestLoopbackTwoWorkersFaultyByteIdentity is the acceptance backbone:
// a sweep distributed over two workers on loopback HTTP, with injected
// message loss, delay, and duplication on both links, must merge to the
// byte-identical report of the single-process run — with per-host
// fingerprints recorded and stratified.
func TestLoopbackTwoWorkersFaultyByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("drives wall-clock supervision loops")
	}
	ref := referenceReport(t, 6)

	dir := filepath.Join(t.TempDir(), "sweep")
	buildSweep(t, dir, 6, 2)
	c, err := NewCoordinator(dir, CoordinatorOptions{Seed: 7, AssignRetries: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	faulty := func(seed uint64) *FaultTransport {
		ft := NewFaultTransport(seed, nil)
		ft.DropProb = 0.12
		ft.DelayProb = 0.25
		ft.Delay = 2 * time.Millisecond
		ft.DupProb = 0.12
		return ft
	}
	envB := hostBEnv()
	for i, opt := range []WorkerOptions{
		{Hostname: "host-a"},
		{Hostname: "host-b", Env: &envB},
	} {
		opt.Coordinator = c.URL()
		opt.WorkDir = filepath.Join(t.TempDir(), fmt.Sprintf("w%d", i))
		opt.Runner = testRunner{}
		opt.Heartbeat = 50 * time.Millisecond
		opt.ShipInterval = 25 * time.Millisecond
		opt.Seed = uint64(100 + i)
		opt.Transport = faulty(uint64(1000 + i))
		w, err := StartWorker(opt)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
	}
	if err := c.WaitForWorkers(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	statuses, err := shard.Supervise(context.Background(), dir, c.StartFunc(), shard.Options{
		HeartbeatTimeout: 3 * time.Second,
		Retries:          4,
		Backoff:          50 * time.Millisecond,
		Seed:             7,
	})
	if err != nil {
		t.Fatalf("supervise: %v", err)
	}
	for _, st := range statuses {
		if st.Lost {
			t.Fatalf("shard %d lost under injected faults: %+v", st.Shard, st)
		}
	}

	got := mergedReport(t, dir)
	if !bytes.Equal(got, ref) {
		t.Errorf("distributed report differs from single-process run:\n--- ref\n%s\n--- got\n%s", ref, got)
	}
	rep, err := shard.Merge(dir)
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[string]bool{}
	for _, s := range rep.Shards {
		if s.HostFingerprint == "" || s.Host == "" {
			t.Errorf("shard %d merged without host provenance: %+v", s.Index, s)
		}
		hosts[s.HostFingerprint] = true
	}
	if len(hosts) == 2 && len(rep.Strata) != 2 {
		t.Errorf("two distinct hosts measured but %d strata recorded", len(rep.Strata))
	}
}

// TestPartitionReassignmentByteIdentity kills the link to the worker
// holding the only shard mid-unit. The coordinator must see the stall,
// fence the attempt, reassign to the second worker — which resumes from
// the shipped journal rather than re-measuring — and the healed
// zombie's late chunks must be refused. The merged report stays
// byte-identical to the single-process run.
func TestPartitionReassignmentByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("drives wall-clock supervision loops")
	}
	const k = 4
	ref := referenceReport(t, k)

	dir := filepath.Join(t.TempDir(), "sweep")
	buildSweep(t, dir, k, 1)
	c, err := NewCoordinator(dir, CoordinatorOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ftA := NewFaultTransport(11, nil)
	ftA.DropProb = 0.05
	var callsA, callsB atomic.Int64
	mkWorker := func(name string, ft http.RoundTripper, calls *atomic.Int64, env *rules.Environment) *Worker {
		w, err := StartWorker(WorkerOptions{
			Coordinator:  c.URL(),
			WorkDir:      filepath.Join(t.TempDir(), name),
			Runner:       testRunner{throttle: 5 * time.Millisecond, calls: calls},
			Hostname:     name,
			Env:          env,
			Heartbeat:    50 * time.Millisecond,
			ShipInterval: 25 * time.Millisecond,
			Seed:         3,
			Transport:    ft,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	wA := mkWorker("host-a", ftA, &callsA, nil)
	defer wA.Close()
	envB := hostBEnv()
	wB := mkWorker("host-b", nil, &callsB, &envB)
	defer wB.Close()
	if err := c.WaitForWorkers(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	// Cut the link once the mirror proves worker A is mid-shard: the
	// first unit fully shipped and verified-complete, the second unit's
	// journal partially shipped.
	shardDir := filepath.Join(dir, shard.ShardDirName(0))
	u0 := filepath.Join(shardDir, shard.UnitsDir, "u00-cfg-00", shard.UnitResultFile)
	u1 := filepath.Join(shardDir, shard.UnitsDir, "u01-cfg-01", campaign.JournalFile)
	partitioned := make(chan struct{})
	go func() {
		defer close(partitioned)
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if _, err := os.Stat(u0); err == nil {
				if fi, err := os.Stat(u1); err == nil && fi.Size() > 300 {
					ftA.Partition()
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	statuses, err := shard.Supervise(context.Background(), dir, c.StartFunc(), shard.Options{
		HeartbeatTimeout: 700 * time.Millisecond,
		Retries:          2,
		Backoff:          50 * time.Millisecond,
		Seed:             9,
	})
	if err != nil {
		t.Fatalf("supervise: %v", err)
	}
	<-partitioned
	if !ftA.Partitioned() {
		t.Fatal("partition trigger never fired — the shard completed before mid-unit state was observable")
	}
	st := statuses[0]
	if st.Lost {
		t.Fatalf("shard lost despite a second worker: %+v", st)
	}
	if st.Attempts < 2 || st.Stalls < 1 {
		t.Fatalf("partition did not force a stall reassignment: %+v", st)
	}

	// The replacement worker resumed from the mirror: it measured
	// something, but strictly less than the whole sweep (the completed
	// first unit shipped before the cut is never re-measured).
	full := int64(k * 14) // Warmup 2 + MinSamples 12 per unit
	if callsB.Load() == 0 {
		t.Fatal("worker B measured nothing; reassignment never reached it")
	}
	if callsB.Load() > full-14 {
		t.Errorf("worker B re-measured completed observations: %d calls, want ≤ %d", callsB.Load(), full-14)
	}

	// Completion provenance: attempt 2, worker B's host.
	d, ok := shard.LoadDone(shardDir)
	if !ok || d.Attempt != 2 {
		t.Fatalf("done sentinel: %+v ok=%v, want attempt 2", d, ok)
	}
	if h, ok := shard.LoadHost(shardDir); !ok || h.Hostname != "host-b" {
		t.Fatalf("host record: %+v ok=%v, want host-b", h, ok)
	}

	// Heal the zombie's link: its late traffic must be refused as stale
	// and its executor must stand down, with the mirror untouched.
	before := mergedReport(t, dir)
	ftA.Heal()
	deadline := time.Now().Add(10 * time.Second)
	for {
		wA.mu.Lock()
		n := len(wA.jobs)
		wA.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("zombie worker A never stood down after heal")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // let any straggler frames land (and be refused)
	after := mergedReport(t, dir)
	if !bytes.Equal(before, after) {
		t.Error("zombie traffic after heal changed the merged report")
	}
	if !bytes.Equal(after, ref) {
		t.Errorf("post-partition report differs from single-process run:\n--- ref\n%s\n--- got\n%s", ref, after)
	}
}

// TestAllWorkersUnreachableDegrades: when no worker can be reached, the
// retry budget exhausts, the shard is reported lost, and the merge
// carries the loss explicitly (Rule 4) with a degraded verdict.
func TestAllWorkersUnreachableDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("drives wall-clock supervision loops")
	}
	dir := filepath.Join(t.TempDir(), "sweep")
	buildSweep(t, dir, 2, 1)
	c, err := NewCoordinator(dir, CoordinatorOptions{Seed: 5, AssignRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ft := NewFaultTransport(1, nil)
	w, err := StartWorker(WorkerOptions{
		Coordinator:  c.URL(),
		WorkDir:      filepath.Join(t.TempDir(), "w"),
		Runner:       testRunner{},
		Hostname:     "host-a",
		ShipInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := c.WaitForWorkers(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Partition from the start: every assignment RPC fails.
	ft.Partition()
	c.client.Transport = ft

	statuses, err := shard.Supervise(context.Background(), dir, c.StartFunc(), shard.Options{
		HeartbeatTimeout: 500 * time.Millisecond,
		Retries:          1,
		Backoff:          30 * time.Millisecond,
		Seed:             5,
	})
	if err != nil {
		t.Fatalf("supervise: %v", err)
	}
	if !statuses[0].Lost {
		t.Fatalf("unreachable worker should lose the shard: %+v", statuses[0])
	}
	rep, err := shard.Merge(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stop != bench.StopDegraded || rep.UnitsLost != 2 {
		t.Fatalf("merge verdict = %q, lost %d; want degraded with 2 lost", rep.Stop, rep.UnitsLost)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Rule == 4 {
			found = true
		}
	}
	if !found {
		t.Error("no Rule 4 loss finding for the abandoned units")
	}
}

// TestZombieFencing drives the fencing protocol at the wire level with
// a stub worker: once the supervisor kills an attempt, every message
// carrying its attempt number — chunk, heartbeat, completion — must be
// refused and the mirror left untouched.
func TestZombieFencing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sweep")
	sw := buildSweep(t, dir, 2, 1)
	c, err := NewCoordinator(dir, CoordinatorOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Stub worker: accepts every assignment, runs nothing.
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSONResp(w, AssignResponse{OK: true})
	}))
	defer stub.Close()
	client := &http.Client{Timeout: 2 * time.Second}
	var reg RegisterResponse
	env := HostEnv()
	fp, _ := Fingerprint(env)
	if err := postJSON(client, c.URL()+PathRegister, RegisterRequest{
		Protocol: ProtocolVersion, Addr: stub.URL, Hostname: "stub", Env: env, EnvFingerprint: fp,
	}, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.SweepHash != sw.SweepHash {
		t.Fatalf("registration sweep hash %s, want %s", reg.SweepHash, sw.SweepHash)
	}

	start := c.StartFunc()
	h1, err := start(filepath.Join(dir, shard.ShardDirName(0)), 1)
	if err != nil {
		t.Fatal(err)
	}

	chunk := func(attempt int, path string, off int64, data []byte) ChunkResponse {
		t.Helper()
		var resp ChunkResponse
		if err := postJSON(client, c.URL()+PathChunk, ChunkFrame{
			WorkerID: reg.WorkerID, SweepHash: sw.SweepHash, Shard: 0, Attempt: attempt,
			Path: path, Off: off, Data: data, CRC: crc32.ChecksumIEEE(data),
		}, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	jpath := shard.UnitsDir + "/" + sw.Units[0].ID + "/" + campaign.JournalFile

	if resp := chunk(1, jpath, 0, []byte("alive\n")); !resp.OK {
		t.Fatalf("live attempt's chunk refused: %+v", resp)
	}
	mirror := filepath.Join(dir, shard.ShardDirName(0), filepath.FromSlash(jpath))
	before, err := os.ReadFile(mirror)
	if err != nil {
		t.Fatal(err)
	}

	// Supervisor kills attempt 1 (stall, partition — reason irrelevant).
	if err := h1.Kill(); err != nil {
		t.Fatal(err)
	}
	if resp := chunk(1, jpath, int64(len(before)), []byte("zombie\n")); resp.OK || !resp.Stale {
		t.Fatalf("killed attempt's chunk accepted: %+v", resp)
	}
	var hbResp ChunkResponse
	if err := postJSON(client, c.URL()+PathHeartbeat, HeartbeatMsg{
		WorkerID: reg.WorkerID, SweepHash: sw.SweepHash, Shard: 0, Attempt: 1,
		HB: shard.Heartbeat{Seq: 99, Attempt: 1},
	}, &hbResp); err != nil {
		t.Fatal(err)
	}
	if hbResp.OK || !hbResp.Stale {
		t.Fatalf("killed attempt's heartbeat accepted: %+v", hbResp)
	}
	var doneResp DoneResponse
	if err := postJSON(client, c.URL()+PathDone, DoneRequest{
		WorkerID: reg.WorkerID, SweepHash: sw.SweepHash, Shard: 0, Attempt: 1,
		Done: shard.ShardDone{Shard: 0, SweepHash: sw.SweepHash, Attempt: 1},
	}, &doneResp); err != nil {
		t.Fatal(err)
	}
	if doneResp.OK || !doneResp.Stale {
		t.Fatalf("killed attempt's completion accepted: %+v", doneResp)
	}

	// Reassignment: attempt 2 owns the shard; attempt 1 frames stay dead.
	if _, err := start(filepath.Join(dir, shard.ShardDirName(0)), 2); err != nil {
		t.Fatal(err)
	}
	if resp := chunk(1, jpath, int64(len(before)), []byte("zombie\n")); resp.OK || !resp.Stale {
		t.Fatalf("stale attempt accepted after reassignment: %+v", resp)
	}
	if resp := chunk(2, jpath, int64(len(before)), []byte("successor\n")); !resp.OK {
		t.Fatalf("successor attempt refused: %+v", resp)
	}
	after, err := os.ReadFile(mirror)
	if err != nil {
		t.Fatal(err)
	}
	want := string(before) + "successor\n"
	if string(after) != want {
		t.Fatalf("mirror corrupted by zombie: %q, want %q", after, want)
	}
}

// TestChunkApplySemantics pins the mirror's apply rules: in-order
// append, idempotent duplicates, refused gaps, and bounded truncation.
func TestChunkApplySemantics(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, shard.ShardDirName(0)), 0o755); err != nil {
		t.Fatal(err)
	}
	c := &Coordinator{sweepDir: dir}
	path := shard.UnitsDir + "/u00-x/" + campaign.JournalFile
	frame := func(off int64, data []byte, trunc bool) ChunkFrame {
		return ChunkFrame{WorkerID: "w000", Shard: 0, Attempt: 1, Path: path,
			Off: off, Data: data, CRC: crc32.ChecksumIEEE(data), Truncate: trunc}
	}
	if resp := c.applyChunk(frame(0, []byte("aaaa"), false)); !resp.OK || resp.ResumeOff != 4 {
		t.Fatalf("initial append: %+v", resp)
	}
	if resp := c.applyChunk(frame(4, []byte("bbbb"), false)); !resp.OK || resp.ResumeOff != 8 {
		t.Fatalf("sequential append: %+v", resp)
	}
	// Duplicate delivery: acknowledged, not rewritten.
	if resp := c.applyChunk(frame(4, []byte("XXXX"), false)); !resp.OK || resp.ResumeOff != 8 {
		t.Fatalf("duplicate: %+v", resp)
	}
	// Gap: refused with the authoritative resume offset.
	if resp := c.applyChunk(frame(12, []byte("cccc"), false)); resp.OK || resp.ResumeOff != 8 {
		t.Fatalf("gap: %+v", resp)
	}
	// Truncate down (torn-tail drop), then append the divergent suffix.
	if resp := c.applyChunk(frame(6, nil, true)); !resp.OK || resp.ResumeOff != 6 {
		t.Fatalf("truncate: %+v", resp)
	}
	// Truncate beyond the mirror: refused.
	if resp := c.applyChunk(frame(100, nil, true)); resp.OK || resp.ResumeOff != 6 {
		t.Fatalf("truncate past end: %+v", resp)
	}
	if resp := c.applyChunk(frame(6, []byte("dd"), false)); !resp.OK || resp.ResumeOff != 8 {
		t.Fatalf("post-truncate append: %+v", resp)
	}
	got, err := os.ReadFile(filepath.Join(dir, shard.ShardDirName(0), filepath.FromSlash(path)))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaaabbdd" {
		t.Fatalf("mirror = %q, want aaaabbdd", got)
	}
}

func TestChunkFrameValidate(t *testing.T) {
	good := ChunkFrame{Shard: 0, Attempt: 1, Path: "units/u0/journal.jsonl",
		Data: []byte("x"), CRC: crc32.ChecksumIEEE([]byte("x"))}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid frame refused: %v", err)
	}
	for name, f := range map[string]ChunkFrame{
		"corrupt CRC":    {Attempt: 1, Path: "units/u0/journal.jsonl", Data: []byte("x"), CRC: 1},
		"traversal":      {Attempt: 1, Path: "../../etc/passwd", CRC: 0},
		"absolute":       {Attempt: 1, Path: "/etc/passwd", CRC: 0},
		"wrong file":     {Attempt: 1, Path: "units/u0/done.json", CRC: 0},
		"deep path":      {Attempt: 1, Path: "units/u0/x/journal.jsonl", CRC: 0},
		"negative off":   {Attempt: 1, Path: "units/u0/journal.jsonl", Off: -1, CRC: 0},
		"zero attempt":   {Attempt: 0, Path: "units/u0/journal.jsonl", CRC: 0},
		"trunc armed":    {Attempt: 1, Path: "units/u0/journal.jsonl", Truncate: true, Data: []byte("x"), CRC: crc32.ChecksumIEEE([]byte("x"))},
		"dotted unit":    {Attempt: 1, Path: "units/../journal.jsonl", CRC: 0},
		"oversize chunk": {Attempt: 1, Path: "units/u0/journal.jsonl", Data: make([]byte, MaxChunk+1), CRC: crc32.ChecksumIEEE(make([]byte, MaxChunk+1))},
	} {
		if err := f.Validate(); err == nil {
			t.Errorf("%s: frame accepted", name)
		}
	}
}

func TestSeededBackoffDeterministic(t *testing.T) {
	a := SeededBackoff(7, "assign/0/2", 3, 50*time.Millisecond, 5*time.Second)
	b := SeededBackoff(7, "assign/0/2", 3, 50*time.Millisecond, 5*time.Second)
	if a != b {
		t.Fatalf("same inputs, different backoff: %s vs %s", a, b)
	}
	if c := SeededBackoff(8, "assign/0/2", 3, 50*time.Millisecond, 5*time.Second); c == a {
		t.Error("different seeds produced identical jitter (suspicious)")
	}
	base := 200 * time.Millisecond // try 3 → base 50ms<<2
	if a < base || a >= base+base/2 {
		t.Errorf("backoff %s outside [%s, %s)", a, base, base+base/2)
	}
	if got := SeededBackoff(7, "x", 50, 50*time.Millisecond, time.Second); got >= 1500*time.Millisecond {
		t.Errorf("ceiling not applied: %s", got)
	}
}

func TestFaultTransportDeterministic(t *testing.T) {
	decisions := func() []bool {
		ft := NewFaultTransport(99, nil)
		ft.DropProb = 0.5
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, ft.draw() < ft.DropProb)
		}
		return out
	}
	a, b := decisions(), decisions()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across same-seed runs", i)
		}
	}
}

// TestRemoteShipmentV2ByteIdentity runs a sweep whose units journal in
// the chunked binary v2 format through the full remote transport: the
// worker's truncate floors (campaign.ValidPrefix) and the coordinator's
// byte-oriented chunk ingestion must be format-transparent, the
// mirrored unit journals must replay as clean v2, and the merged report
// must be byte-identical to the v1 single-process reference.
func TestRemoteShipmentV2ByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("drives wall-clock supervision loops")
	}
	const k = 4
	ref := referenceReport(t, k) // v1 journals: the cross-format baseline

	dir := filepath.Join(t.TempDir(), "sweep")
	sw, err := shard.NewSweep("remote-sweep", makeUnits(t, k), testFaultFP(t), testEnv, 2)
	if err != nil {
		t.Fatal(err)
	}
	sw.Journal = "v2"
	if err := shard.Create(dir, sw); err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(dir, CoordinatorOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w, err := StartWorker(WorkerOptions{
		Coordinator:  c.URL(),
		Hostname:     "host-a",
		WorkDir:      filepath.Join(t.TempDir(), "w0"),
		Runner:       testRunner{},
		Heartbeat:    50 * time.Millisecond,
		ShipInterval: 25 * time.Millisecond,
		Seed:         100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := c.WaitForWorkers(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	statuses, err := shard.Supervise(context.Background(), dir, c.StartFunc(), shard.Options{
		HeartbeatTimeout: 3 * time.Second,
		Retries:          2,
		Backoff:          50 * time.Millisecond,
		Seed:             11,
	})
	if err != nil {
		t.Fatalf("supervise: %v", err)
	}
	for _, st := range statuses {
		if st.Lost {
			t.Fatalf("shard %d lost: %+v", st.Shard, st)
		}
	}
	if got := mergedReport(t, dir); !bytes.Equal(got, ref) {
		t.Errorf("v2 remote report differs from v1 single-process run:\n--- ref\n%s\n--- got\n%s", ref, got)
	}
	// The mirrored journals the worker shipped back must be genuine v2
	// bytes that replay clean — proof the byte-oriented transport and
	// the sniffing reader compose.
	for i, m := range sw.Shards() {
		for _, u := range m.Units {
			jp := filepath.Join(shard.UnitDir(filepath.Join(dir, shard.ShardDirName(i)), u.ID), campaign.JournalFile)
			data, err := os.ReadFile(jp)
			if err != nil {
				t.Fatal(err)
			}
			if campaign.SniffFormat(data) != campaign.FormatV2 {
				t.Fatalf("mirrored journal %s is not v2", u.ID)
			}
			if campaign.ValidPrefix(data) != int64(len(data)) {
				t.Fatalf("mirrored journal %s has a torn tail after clean completion", u.ID)
			}
		}
	}
}
