package remote

import (
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/shard"
)

// FuzzChunkFrame throws arbitrary wire bytes — torn, duplicated,
// CRC-corrupted, path-hostile — at the full decode → validate → apply
// path a coordinator runs on every chunk POST. The mirror must never
// be written outside the shard directory and never accept a frame whose
// payload fails its checksum.
func FuzzChunkFrame(f *testing.F) {
	good := ChunkFrame{WorkerID: "w000", Shard: 0, Attempt: 1,
		Path: "units/u00-cfg-00/journal.jsonl", Off: 0,
		Data: []byte(`{"seq":1}` + "\n"), CRC: crc32.ChecksumIEEE([]byte(`{"seq":1}` + "\n"))}
	seed, _ := json.Marshal(good)
	f.Add(seed)
	torn := append([]byte(nil), seed[:len(seed)/2]...)
	f.Add(torn)
	bad := good
	bad.CRC ^= 0xdeadbeef
	b, _ := json.Marshal(bad)
	f.Add(b)
	evil := good
	evil.Path = "../../../../etc/passwd"
	b, _ = json.Marshal(evil)
	f.Add(b)
	trunc := good
	trunc.Truncate, trunc.Data, trunc.CRC = true, nil, 0
	b, _ = json.Marshal(trunc)
	f.Add(b)
	f.Add([]byte(`{"path":"units/x/result.json","off":-9,"attempt":1}`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var frame ChunkFrame
		if err := json.Unmarshal(raw, &frame); err != nil {
			return
		}
		if err := frame.Validate(); err != nil {
			return
		}
		// Validated frames must apply without panicking and without
		// escaping the shard mirror.
		dir := t.TempDir()
		c := &Coordinator{sweepDir: dir}
		resp := c.applyChunk(frame)
		if resp.OK && frame.Truncate == false && len(frame.Data) > 0 {
			full := filepath.Join(dir, shard.ShardDirName(frame.Shard), filepath.FromSlash(frame.Path))
			rel, err := filepath.Rel(dir, full)
			if err != nil || strings.HasPrefix(rel, "..") {
				t.Fatalf("accepted frame escaped the sweep dir: %q", frame.Path)
			}
			if _, err := os.Stat(full); err != nil {
				t.Fatalf("accepted frame left no mirror file: %v", err)
			}
		}
		// Whatever landed on disk must be confined to the temp dir tree.
		filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error { return err })
	})
}

// FuzzRegister exercises registration decoding and validation with
// hostile handshakes: wrong protocol versions, junk addresses, missing
// fingerprints. Validate must reject them without panicking, and
// accepted registrations must carry a plausible callback address.
func FuzzRegister(f *testing.F) {
	env := HostEnv()
	fp, _ := Fingerprint(env)
	ok := RegisterRequest{Protocol: ProtocolVersion, Addr: "http://127.0.0.1:9", Hostname: "h", Env: env, EnvFingerprint: fp}
	b, _ := json.Marshal(ok)
	f.Add(b)
	f.Add([]byte(`{"protocol":99,"addr":"http://x","env_fingerprint":"z"}`))
	f.Add([]byte(`{"protocol":1,"addr":"gopher://x","env_fingerprint":"z"}`))
	f.Add([]byte(`{"protocol":1,"addr":"","env_fingerprint":""}`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var req RegisterRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			return
		}
		if req.Protocol != ProtocolVersion {
			t.Fatalf("accepted foreign protocol %d", req.Protocol)
		}
		if !strings.HasPrefix(req.Addr, "http://") && !strings.HasPrefix(req.Addr, "https://") {
			t.Fatalf("accepted non-HTTP callback %q", req.Addr)
		}
		if req.EnvFingerprint == "" {
			t.Fatal("accepted registration without an environment fingerprint")
		}
	})
}

// FuzzValidChunkPath pins the path filter directly: nothing outside
// units/<id>/<shard file> may pass, regardless of encoding tricks.
func FuzzValidChunkPath(f *testing.F) {
	for _, s := range []string{
		"units/u00/journal.jsonl", "units/../x/journal.jsonl", "/units/u/journal.jsonl",
		"units/u\x00/journal.jsonl", "units//journal.jsonl", "units/u/./journal.jsonl",
		"units/u/heartbeat.json",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, p string) {
		if !ValidChunkPath(p) {
			return
		}
		clean := filepath.ToSlash(filepath.Clean(p))
		if clean != p {
			t.Fatalf("accepted non-canonical path %q (clean %q)", p, clean)
		}
		if strings.Contains(p, "..") || strings.HasPrefix(p, "/") {
			t.Fatalf("accepted traversal path %q", p)
		}
	})
}
