package desim

import (
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var e Engine
	var order []int
	e.At(30*time.Microsecond, func(*Engine) { order = append(order, 3) })
	e.At(10*time.Microsecond, func(*Engine) { order = append(order, 1) })
	e.At(20*time.Microsecond, func(*Engine) { order = append(order, 2) })
	end := e.Run()
	if end != 30*time.Microsecond {
		t.Errorf("end time = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Steps() != 3 {
		t.Errorf("steps = %d", e.Steps())
	}
}

func TestTiesBreakFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Microsecond, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v, want FIFO", order)
		}
	}
}

func TestAfterAndCascade(t *testing.T) {
	var e Engine
	var fired []time.Duration
	e.After(5*time.Microsecond, func(en *Engine) {
		fired = append(fired, en.Now())
		en.After(7*time.Microsecond, func(en *Engine) {
			fired = append(fired, en.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 5*time.Microsecond || fired[1] != 12*time.Microsecond {
		t.Errorf("fired = %v", fired)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var e Engine
	var at time.Duration = -1
	e.At(10*time.Microsecond, func(en *Engine) {
		// Scheduling in the past runs "now", never before.
		en.At(time.Microsecond, func(en *Engine) { at = en.Now() })
	})
	e.Run()
	if at != 10*time.Microsecond {
		t.Errorf("past event ran at %v, want clamped to 10µs", at)
	}
	// Negative delay clamps too.
	var e2 Engine
	e2.After(-time.Second, func(en *Engine) { at = en.Now() })
	e2.Run()
	if at != 0 {
		t.Errorf("negative After ran at %v", at)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var count int
	for i := 1; i <= 5; i++ {
		e.At(time.Duration(i)*time.Millisecond, func(*Engine) { count++ })
	}
	e.RunUntil(3 * time.Millisecond)
	if count != 3 {
		t.Errorf("processed %d events by 3ms, want 3", count)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if count != 5 {
		t.Errorf("total = %d", count)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		var e Engine
		var log []time.Duration
		// A little event storm with equal times and cascades.
		for i := 0; i < 50; i++ {
			d := time.Duration(i%7) * time.Microsecond
			e.At(d, func(en *Engine) {
				log = append(log, en.Now())
				if en.Steps()%3 == 0 {
					en.After(2*time.Microsecond, func(en *Engine) {
						log = append(log, en.Now())
					})
				}
			})
		}
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
