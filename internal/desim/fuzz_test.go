package desim

import (
	"container/heap"
	"fmt"
	"testing"
	"time"
)

// refEngine is the pre-calendar-queue binary-heap implementation, kept
// verbatim as the ordering oracle for differential fuzzing. Its
// observable contract — events fire in ascending (at, seq) order, past
// schedules clamp to now — is what the calendar queue must reproduce.
type refEngine struct {
	now   time.Duration
	seq   uint64
	queue refQueue
	steps uint64
}

type refEvent struct {
	at  time.Duration
	seq uint64
	fn  func(*refEngine)
}

type refQueue []refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x interface{}) { *q = append(*q, x.(refEvent)) }
func (q *refQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

func (e *refEngine) At(at time.Duration, fn func(*refEngine)) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, refEvent{at: at, seq: e.seq, fn: fn})
}

func (e *refEngine) After(d time.Duration, fn func(*refEngine)) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

func (e *refEngine) Run() time.Duration {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(refEvent)
		e.now = ev.at
		e.steps++
		ev.fn(e)
	}
	return e.now
}

func (e *refEngine) RunUntil(deadline time.Duration) time.Duration {
	for len(e.queue) > 0 {
		if e.queue[0].at > deadline {
			break
		}
		ev := heap.Pop(&e.queue).(refEvent)
		e.now = ev.at
		e.steps++
		ev.fn(e)
	}
	return e.now
}

// fuzzOp is one decoded scheduling instruction. The fuzz input is a
// byte string decoded 5 bytes at a time: [kind, t0, t1, cascadeDelay,
// cascadeCount]. kind selects At vs After and whether the handler
// schedules follow-ups; times deliberately collide often (mod a small
// range) to stress same-timestamp batching.
type fuzzOp struct {
	after    bool
	at       time.Duration
	cascade  time.Duration
	children int
}

func decodeOps(data []byte) []fuzzOp {
	var ops []fuzzOp
	for i := 0; i+5 <= len(data) && len(ops) < 512; i += 5 {
		kind := data[i]
		t := (time.Duration(data[i+1])<<8 | time.Duration(data[i+2])) % 4096 * time.Microsecond
		cd := time.Duration(data[i+3]) % 16 * time.Microsecond
		n := int(data[i+4]) % 4
		ops = append(ops, fuzzOp{
			after:    kind&1 == 1,
			at:       t,
			cascade:  cd,
			children: n,
		})
	}
	return ops
}

// runCalendar executes the decoded schedule on the calendar-queue
// engine, recording the (time, id) trace of every fired event.
func runCalendar(ops []fuzzOp, deadline time.Duration) (trace []string, now time.Duration, pending int, steps uint64) {
	e := new(Engine)
	id := 0
	var mk func(op fuzzOp, depth int) Handler
	mk = func(op fuzzOp, depth int) Handler {
		myID := id
		id++
		return func(e *Engine) {
			trace = append(trace, fmt.Sprintf("%d@%d", myID, e.Now()))
			if depth < 2 {
				for c := 0; c < op.children; c++ {
					e.After(op.cascade*time.Duration(c), mk(op, depth+1))
				}
			}
		}
	}
	for _, op := range ops {
		if op.after {
			e.After(op.at, mk(op, 0))
		} else {
			e.At(op.at, mk(op, 0))
		}
	}
	if deadline >= 0 {
		now = e.RunUntil(deadline)
	} else {
		now = e.Run()
	}
	return trace, now, e.Pending(), e.Steps()
}

// runHeap executes the identical schedule on the reference heap engine.
func runHeap(ops []fuzzOp, deadline time.Duration) (trace []string, now time.Duration, pending int, steps uint64) {
	e := new(refEngine)
	id := 0
	var mk func(op fuzzOp, depth int) func(*refEngine)
	mk = func(op fuzzOp, depth int) func(*refEngine) {
		myID := id
		id++
		return func(e *refEngine) {
			trace = append(trace, fmt.Sprintf("%d@%d", myID, e.now))
			if depth < 2 {
				for c := 0; c < op.children; c++ {
					e.After(op.cascade*time.Duration(c), mk(op, depth+1))
				}
			}
		}
	}
	for _, op := range ops {
		if op.after {
			e.After(op.at, mk(op, 0))
		} else {
			e.At(op.at, mk(op, 0))
		}
	}
	if deadline >= 0 {
		now = e.RunUntil(deadline)
	} else {
		now = e.Run()
	}
	return trace, now, len(e.queue), e.steps
}

func diffEngines(t *testing.T, data []byte, deadline time.Duration) {
	t.Helper()
	ops := decodeOps(data)
	ct, cn, cp, cs := runCalendar(ops, deadline)
	ht, hn, hp, hs := runHeap(ops, deadline)
	if len(ct) != len(ht) {
		t.Fatalf("deadline %v: calendar fired %d events, heap fired %d", deadline, len(ct), len(ht))
	}
	for i := range ct {
		if ct[i] != ht[i] {
			t.Fatalf("deadline %v: trace diverges at %d: calendar %q, heap %q", deadline, i, ct[i], ht[i])
		}
	}
	if cn != hn {
		t.Fatalf("deadline %v: final time: calendar %v, heap %v", deadline, cn, hn)
	}
	if cp != hp {
		t.Fatalf("deadline %v: pending: calendar %d, heap %d", deadline, cp, hp)
	}
	if cs != hs {
		t.Fatalf("deadline %v: steps: calendar %d, heap %d", deadline, cs, hs)
	}
}

// FuzzEventOrder differentially fuzzes the calendar-queue engine
// against the reference binary heap: same schedule, same trace, same
// final clock, same pending count — for full runs and for RunUntil at
// an input-derived deadline.
func FuzzEventOrder(f *testing.F) {
	// Seed corpus: empty, single event, heavy timestamp collisions,
	// cascades at same instant, wide spread triggering resize, and a
	// mixed schedule exercising At-in-the-past clamping.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 0})
	f.Add([]byte{1, 0, 5, 0, 3, 1, 0, 5, 0, 3, 0, 0, 5, 0, 3})
	f.Add([]byte{0, 0, 9, 0, 3, 0, 0, 9, 0, 3, 0, 0, 9, 0, 3, 0, 0, 9, 0, 3})
	f.Add([]byte{0, 15, 255, 15, 2, 0, 0, 1, 1, 1, 1, 7, 7, 3, 3, 0, 15, 0, 0, 0})
	f.Add(func() []byte {
		var b []byte
		for i := 0; i < 64; i++ {
			b = append(b, byte(i%2), byte(i), byte(i*37), byte(i%16), byte(i%4))
		}
		return b
	}())
	f.Fuzz(func(t *testing.T, data []byte) {
		diffEngines(t, data, -1)
		// Also check partial execution: deadline derived from input so
		// the cut point varies.
		var dl time.Duration
		for _, b := range data {
			dl = dl*3 + time.Duration(b)
		}
		diffEngines(t, data, (dl%4096)*time.Microsecond)
	})
}

// TestEngineMatchesHeapReference runs the differential check over a
// deterministic schedule family, so the equivalence holds in plain `go
// test` runs even when fuzzing is never invoked.
func TestEngineMatchesHeapReference(t *testing.T) {
	state := uint64(0x9e3779b97f4a7c15)
	next := func() byte {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return byte(state)
	}
	for trial := 0; trial < 50; trial++ {
		n := 5 * (trial + 1)
		data := make([]byte, n)
		for i := range data {
			data[i] = next()
		}
		diffEngines(t, data, -1)
		diffEngines(t, data, time.Duration(trial)*257*time.Microsecond)
	}
}
