// Package desim is a minimal deterministic discrete-event simulation
// engine: an event queue ordered by simulated time with stable FIFO
// tie-breaking, on which the cluster package builds its simulated
// parallel machine. Determinism matters because the repository's
// experiments must reproduce bit-for-bit under a fixed seed (Rule 9
// applied to ourselves).
//
// The queue is a calendar queue (Brown 1988): events hash into time
// buckets of adaptive width, insertion is O(1) amortized, and dequeue
// harvests whole same-timestamp batches from the current bucket instead
// of sifting a binary heap once per event. The observable order is
// exactly the heap order — ascending (time, insertion seq) — which the
// differential fuzz target (FuzzEventOrder) pins against a reference
// heap implementation.
package desim

import (
	"sort"
	"time"
)

// Handler is an event callback, invoked with the engine so it can
// schedule follow-up events.
type Handler func(e *Engine)

type event struct {
	at  time.Duration
	seq uint64 // insertion order, breaks time ties deterministically
	fn  Handler
}

const (
	minBuckets   = 64
	defaultWidth = int64(time.Microsecond)
)

// Engine is a single-threaded discrete-event simulator. The zero value
// is ready to use at simulated time zero.
type Engine struct {
	now   time.Duration
	seq   uint64
	steps uint64

	// Calendar queue state. Events live in buckets[day&(len-1)] where
	// day = at/width; curDay is the dequeue cursor (every queued event
	// has day >= curDay after a harvest).
	buckets [][]event
	width   int64 // bucket width in nanoseconds
	curDay  int64
	size    int

	batch []event // same-timestamp harvest scratch, reused across steps
}

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.size }

// At schedules fn to run at absolute simulated time at. Events scheduled
// in the past run at the current time (time never goes backwards).
func (e *Engine) At(at time.Duration, fn Handler) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.insert(event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current simulated time.
func (e *Engine) After(d time.Duration, fn Handler) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Run processes events until the queue drains, returning the final
// simulated time.
func (e *Engine) Run() time.Duration {
	for e.size > 0 {
		e.stepBatch(1<<62 - 1)
	}
	return e.now
}

// RunUntil processes events with timestamps <= deadline, leaving later
// events queued, and advances the clock to min(deadline, drain time).
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	for e.size > 0 {
		if !e.stepBatch(deadline) {
			break
		}
	}
	return e.now
}

func (e *Engine) init() {
	e.buckets = make([][]event, minBuckets)
	e.width = defaultWidth
	e.curDay = int64(e.now) / e.width
}

func (e *Engine) insert(ev event) {
	if e.buckets == nil {
		e.init()
	}
	if e.size >= 2*len(e.buckets) {
		e.resize(2 * len(e.buckets))
	}
	idx := (int64(ev.at) / e.width) & int64(len(e.buckets)-1)
	e.buckets[idx] = append(e.buckets[idx], ev)
	e.size++
}

// resize rebuilds the calendar with n buckets and a width matched to the
// current event spread, so the average bucket holds O(1) events of the
// current "day". All decisions are pure functions of the queue contents,
// keeping replay deterministic.
func (e *Engine) resize(n int) {
	var all []event
	for _, b := range e.buckets {
		all = append(all, b...)
	}
	// Width estimate: spread of pending timestamps divided by count, so
	// one day holds roughly one event.
	minAt, maxAt := int64(1<<62-1), int64(0)
	for _, ev := range all {
		if int64(ev.at) < minAt {
			minAt = int64(ev.at)
		}
		if int64(ev.at) > maxAt {
			maxAt = int64(ev.at)
		}
	}
	w := defaultWidth
	if len(all) > 1 && maxAt > minAt {
		w = (maxAt - minAt) / int64(len(all))
		if w < 1 {
			w = 1
		}
	}
	e.buckets = make([][]event, n)
	e.width = w
	e.curDay = int64(e.now) / w
	if len(all) > 0 && minAt/w < e.curDay {
		// Guard: never strand an event behind the cursor (cannot happen
		// with monotonic now, but cheap to make structurally impossible).
		e.curDay = minAt / w
	}
	mask := int64(n - 1)
	for _, ev := range all {
		idx := (int64(ev.at) / e.width) & mask
		e.buckets[idx] = append(e.buckets[idx], ev)
	}
}

// findDay advances the cursor to the day holding the earliest queued
// event and returns that event's timestamp. It scans forward bucket by
// bucket; after a fruitless full revolution (all events more than one
// calendar year away) it jumps straight to the global minimum.
func (e *Engine) findDay() time.Duration {
	n := int64(len(e.buckets))
	mask := n - 1
	for scanned := int64(0); scanned < n; scanned++ {
		var best time.Duration = -1
		for _, ev := range e.buckets[e.curDay&mask] {
			if int64(ev.at)/e.width == e.curDay && (best < 0 || ev.at < best) {
				best = ev.at
			}
		}
		if best >= 0 {
			return best
		}
		e.curDay++
	}
	// Long jump: find the global minimum directly.
	var best time.Duration = -1
	for _, b := range e.buckets {
		for _, ev := range b {
			if best < 0 || ev.at < best {
				best = ev.at
			}
		}
	}
	e.curDay = int64(best) / e.width
	return best
}

// stepBatch harvests every event sharing the earliest timestamp <=
// deadline and runs them in insertion order — one sweep per simulated
// instant rather than one heap pop per event. Handlers that schedule
// more work at the same instant extend the batch (still in seq order),
// exactly matching reference heap semantics. Returns false if the
// earliest event lies beyond the deadline.
func (e *Engine) stepBatch(deadline time.Duration) bool {
	at := e.findDay()
	if at > deadline {
		return false
	}
	e.now = at
	mask := int64(len(e.buckets) - 1)
	for {
		// Harvest all events at `at` from the current-day bucket. The
		// bucket is re-fetched each pass: handlers may have inserted (and
		// possibly resized) during the previous pass.
		b := e.buckets[e.curDay&mask]
		e.batch = e.batch[:0]
		kept := b[:0]
		for _, ev := range b {
			if ev.at == at {
				e.batch = append(e.batch, ev)
			} else {
				kept = append(kept, ev)
			}
		}
		if len(e.batch) == 0 {
			return true
		}
		e.buckets[e.curDay&mask] = kept
		e.size -= len(e.batch)
		// Bucket order is insertion order except after a resize, which
		// may interleave; restore the FIFO contract explicitly.
		sort.Slice(e.batch, func(i, j int) bool { return e.batch[i].seq < e.batch[j].seq })
		for i := range e.batch {
			e.steps++
			e.batch[i].fn(e)
		}
		if e.size < len(e.buckets)/4 && len(e.buckets) > minBuckets {
			e.resize(len(e.buckets) / 2)
			mask = int64(len(e.buckets) - 1)
		}
	}
}
