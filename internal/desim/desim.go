// Package desim is a minimal deterministic discrete-event simulation
// engine: an event queue ordered by simulated time with stable FIFO
// tie-breaking, on which the cluster package builds its simulated
// parallel machine. Determinism matters because the repository's
// experiments must reproduce bit-for-bit under a fixed seed (Rule 9
// applied to ourselves).
package desim

import (
	"container/heap"
	"time"
)

// Handler is an event callback, invoked with the engine so it can
// schedule follow-up events.
type Handler func(e *Engine)

type event struct {
	at  time.Duration
	seq uint64 // insertion order, breaks time ties deterministically
	fn  Handler
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)         { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any           { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventQueue) peek() time.Duration { return q[0].at }

// Engine is a single-threaded discrete-event simulator. The zero value
// is ready to use at simulated time zero.
type Engine struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
	steps uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// At schedules fn to run at absolute simulated time at. Events scheduled
// in the past run at the current time (time never goes backwards).
func (e *Engine) At(at time.Duration, fn Handler) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current simulated time.
func (e *Engine) After(d time.Duration, fn Handler) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Run processes events until the queue drains, returning the final
// simulated time.
func (e *Engine) Run() time.Duration {
	for len(e.queue) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil processes events with timestamps <= deadline, leaving later
// events queued, and advances the clock to min(deadline, drain time).
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	for len(e.queue) > 0 && e.queue.peek() <= deadline {
		e.step()
	}
	if e.now < deadline && len(e.queue) == 0 {
		// Nothing left before the deadline; the clock stays where the
		// last event left it (there is no passage of idle time without
		// events).
		return e.now
	}
	return e.now
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	e.steps++
	ev.fn(e)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
