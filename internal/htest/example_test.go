package htest_test

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/htest"
)

// ExampleShapiroWilk shows Rule 6 in action: the same test accepts
// normal data and rejects the skewed timing data measured systems
// actually produce.
func ExampleShapiroWilk() {
	rng := rand.New(rand.NewPCG(1, 1))
	normal := make([]float64, 100)
	skewed := make([]float64, 100)
	for i := range normal {
		z := rng.NormFloat64()
		normal[i] = 10 + z
		skewed[i] = math.Exp(z)
	}
	n, _ := htest.ShapiroWilk(normal)
	s, _ := htest.ShapiroWilk(skewed)
	fmt.Printf("normal sample rejected at 5%%: %v\n", n.Significant(0.05))
	fmt.Printf("skewed sample rejected at 5%%: %v\n", s.Significant(0.05))
	// Output:
	// normal sample rejected at 5%: false
	// skewed sample rejected at 5%: true
}

// ExampleKruskalWallis compares two systems' medians without any
// normality assumption (§3.2.2).
func ExampleKruskalWallis() {
	rng := rand.New(rand.NewPCG(2, 2))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = 1.70 + 0.2*math.Exp(0.3*rng.NormFloat64())
		b[i] = 1.80 + 0.2*math.Exp(0.3*rng.NormFloat64())
	}
	res, _ := htest.KruskalWallis(a, b)
	fmt.Printf("medians differ at 95%%: %v\n", res.Significant(0.05))
	// Output:
	// medians differ at 95%: true
}

// ExampleOneWayANOVA reproduces the hand-checkable §3.2.1 calculation:
// groups {1,2,3}, {2,3,4}, {3,4,5} give F = egv/igv = 3.
func ExampleOneWayANOVA() {
	res, _ := htest.OneWayANOVA(
		[]float64{1, 2, 3},
		[]float64{2, 3, 4},
		[]float64{3, 4, 5},
	)
	fmt.Printf("F = %g (egv %g / igv %g), p = %.3f\n",
		res.Stat, res.EGV, res.IGV, res.P)
	// Output:
	// F = 3 (egv 3 / igv 1), p = 0.125
}
