package htest

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func TestMannWhitneyCompleteSeparation(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{4, 5, 6}
	res, err := MannWhitney(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.U1 != 0 || res.U2 != 9 {
		t.Errorf("U1, U2 = %g, %g; want 0, 9", res.U1, res.U2)
	}
	if res.RankBiserial != -1 {
		t.Errorf("rank-biserial = %g, want -1 (ys completely above xs)", res.RankBiserial)
	}
	// Continuity-corrected normal approximation: z = −4/√5.25 ≈ −1.746.
	if res.P < 0.07 || res.P > 0.09 {
		t.Errorf("p = %g, want ≈ 0.081", res.P)
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	xs := []float64{1.1, 2.3, 3.2, 4.8, 0.9}
	ys := []float64{2.0, 3.1, 4.4, 5.5}
	ab, err := MannWhitney(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := MannWhitney(ys, xs)
	if err != nil {
		t.Fatal(err)
	}
	if ab.U1 != ba.U2 || ab.U2 != ba.U1 {
		t.Errorf("U not symmetric: (%g,%g) vs (%g,%g)", ab.U1, ab.U2, ba.U1, ba.U2)
	}
	if math.Abs(ab.P-ba.P) > 1e-12 {
		t.Errorf("p not symmetric: %g vs %g", ab.P, ba.P)
	}
	if math.Abs(ab.RankBiserial+ba.RankBiserial) > 1e-12 {
		t.Errorf("rank-biserial not antisymmetric: %g vs %g", ab.RankBiserial, ba.RankBiserial)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	// Heavily tied but distinguishable samples.
	xs := []float64{1, 1, 1, 2, 2, 2, 2, 3}
	ys := []float64{2, 2, 3, 3, 3, 4, 4, 4}
	res, err := MannWhitney(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.P) || res.P <= 0 || res.P > 1 {
		t.Fatalf("tied-data p = %g out of range", res.P)
	}
	if !res.Significant(0.05) {
		t.Errorf("clear shift with ties not significant: p = %g", res.P)
	}

	// All observations one tied value: indistinguishable, p = 1.
	same := []float64{5, 5, 5, 5}
	res, err = MannWhitney(same, same)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("all-tied p = %g, want 1", res.P)
	}
	if res.RankBiserial != 0 {
		t.Errorf("all-tied rank-biserial = %g, want 0", res.RankBiserial)
	}
}

func TestMannWhitneySampleSize(t *testing.T) {
	if _, err := MannWhitney([]float64{1}, []float64{2, 3}); !errors.Is(err, ErrSampleSize) {
		t.Errorf("err = %v, want ErrSampleSize", err)
	}
	if _, err := MannWhitney([]float64{1, 2}, nil); !errors.Is(err, ErrSampleSize) {
		t.Errorf("err = %v, want ErrSampleSize", err)
	}
}

// The two-group Kruskal–Wallis test and the Mann–Whitney test are the
// same rank test (H = z² up to tie handling and continuity); their
// decisions must agree on clear cases.
func TestMannWhitneyAgreesWithKruskalWallis(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 20; trial++ {
		shift := float64(trial) * 0.15
		xs := make([]float64, 25)
		ys := make([]float64, 25)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64() + shift
		}
		mw, err := MannWhitney(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		kw, err := KruskalWallis(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		// Compare decisions away from the α boundary.
		const alpha = 0.05
		mwSig, kwSig := mw.P < alpha, kw.P < alpha
		boundary := mw.P > alpha/4 && mw.P < alpha*4
		if mwSig != kwSig && !boundary {
			t.Errorf("trial %d (shift %.2f): MW p=%g vs KW p=%g disagree",
				trial, shift, mw.P, kw.P)
		}
	}
}

// Larger true shifts must not yield larger p-values (sanity of the
// approximation the regression gate rides on).
func TestMannWhitneyMonotoneInShift(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	base := make([]float64, 40)
	for i := range base {
		base[i] = 100 + 5*rng.NormFloat64()
	}
	prevP := 1.1
	for _, shift := range []float64{0, 2, 5, 10, 20} {
		ys := make([]float64, len(base))
		for i, v := range base {
			ys[i] = v + shift
		}
		res, err := MannWhitney(base, ys)
		if err != nil {
			t.Fatal(err)
		}
		if res.P > prevP+1e-9 {
			t.Errorf("shift %g: p = %g rose above previous %g", shift, res.P, prevP)
		}
		prevP = res.P
	}
	if prevP > 1e-6 {
		t.Errorf("20%% shift at n=40: p = %g, want ≪ 0.05", prevP)
	}
}
