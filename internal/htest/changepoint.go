package htest

import (
	"math"
	"sort"
)

// ChangePoint is the result of Pettitt's nonparametric change-point test
// over an ordered measurement stream: the null hypothesis is that the
// series is one homogeneous sample; the alternative is a location shift
// at some unknown index — a regime change mid-campaign (a daemon waking
// up, a straggler onset, interference starting), the contamination that
// Hunold & Carpen-Amarie and Kalibera & Jones identify as a dominant
// source of irreproducible benchmark results.
type ChangePoint struct {
	// Index is the 0-based index of the last observation attributed to
	// the first regime (the shift happens between Index and Index+1).
	Index int
	// K is Pettitt's statistic max|U_k| (a Mann–Whitney sweep over all
	// split points).
	K float64
	// P is the approximate two-sided significance of the shift,
	// p ≈ 2·exp(−6K²/(n³+n²)) — conservative for p < 0.5.
	P float64
	// MedianBefore and MedianAfter summarize the two regimes around the
	// detected split, for reporting the shift magnitude.
	MedianBefore, MedianAfter float64
}

// Significant reports whether the shift is significant at level alpha.
func (c ChangePoint) Significant(alpha float64) bool { return c.P < alpha }

// Pettitt runs Pettitt's change-point test on the ordered series xs.
// The statistic is computed through the rank formulation
//
//	U_k = 2·Σ_{i≤k} r_i − k·(n+1),  k = 1..n−1
//
// with mid-ranks for ties, where r_i is the rank of xs[i] in the whole
// series; K = max|U_k| and the significance uses the standard
// approximation p ≈ 2·exp(−6K²/(n³+n²)). At least 8 observations are
// required for the approximation to be meaningful.
func Pettitt(xs []float64) (ChangePoint, error) {
	n := len(xs)
	if n < 8 {
		return ChangePoint{}, ErrSampleSize
	}

	// Mid-ranks of xs in the full series.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for t := i; t < j; t++ {
			ranks[idx[t]] = r
		}
		i = j
	}

	nf := float64(n)
	var cum, bestK float64
	bestIdx := 0
	for k := 1; k < n; k++ {
		cum += ranks[k-1]
		u := 2*cum - float64(k)*(nf+1)
		if a := math.Abs(u); a > bestK {
			bestK = a
			bestIdx = k - 1
		}
	}

	p := 2 * math.Exp(-6*bestK*bestK/(nf*nf*nf+nf*nf))
	if p > 1 {
		p = 1
	}
	cp := ChangePoint{Index: bestIdx, K: bestK, P: p}
	before := append([]float64(nil), xs[:bestIdx+1]...)
	after := append([]float64(nil), xs[bestIdx+1:]...)
	cp.MedianBefore = medianOf(before)
	cp.MedianAfter = medianOf(after)
	return cp, nil
}

// medianOf sorts its own copy; tiny helper to avoid an import cycle with
// the callers that already depend on htest.
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
