package htest

import (
	"math"

	"repro/internal/dist"
	"repro/internal/stats"
)

// This file implements the three normality tests the paper's Rule 6
// discussion compares Shapiro–Wilk against (via Razali & Wah [48]):
// Kolmogorov–Smirnov (known parameters), Lilliefors (estimated
// parameters), and Anderson–Darling. Razali & Wah's empirical power
// ranking — Shapiro–Wilk ≥ Anderson–Darling > Lilliefors > KS — is
// reproduced by TestNormalityPowerRanking.

// KolmogorovSmirnov tests xs against a fully specified continuous
// distribution (location and scale NOT estimated from the data; use
// Lilliefors for the composite normality hypothesis). The p-value uses
// the asymptotic Kolmogorov distribution with Stephens' small-sample
// modification.
func KolmogorovSmirnov(xs []float64, cdf func(float64) float64) (TestResult, error) {
	if len(xs) < 3 {
		return TestResult{}, ErrSampleSize
	}
	return KolmogorovSmirnovSorted(stats.Sorted(xs), cdf)
}

// KolmogorovSmirnovSorted is KolmogorovSmirnov for an already-sorted
// sample, skipping the re-sort. The slice is only read.
func KolmogorovSmirnovSorted(s []float64, cdf func(float64) float64) (TestResult, error) {
	n := len(s)
	if n < 3 {
		return TestResult{}, ErrSampleSize
	}
	d := 0.0
	for i, x := range s {
		f := cdf(x)
		dPlus := float64(i+1)/float64(n) - f
		dMinus := f - float64(i)/float64(n)
		d = math.Max(d, math.Max(dPlus, dMinus))
	}
	// Stephens' modified statistic for the asymptotic distribution.
	nf := float64(n)
	t := d * (math.Sqrt(nf) + 0.12 + 0.11/math.Sqrt(nf))
	return TestResult{Name: "D", Stat: d, P: kolmogorovQ(t)}, nil
}

// kolmogorovQ evaluates the Kolmogorov survival function
// Q(t) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² t²).
func kolmogorovQ(t float64) float64 {
	if t <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k) * float64(k) * t * t)
		sum += sign * term
		if term < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// Lilliefors tests composite normality (mean and variance estimated from
// the sample) with the KS statistic and Dallal–Wilkinson's p-value
// approximation (the same approximation R's nortest uses).
func Lilliefors(xs []float64) (TestResult, error) {
	if len(xs) < 5 {
		return TestResult{}, ErrSampleSize
	}
	return LillieforsSorted(stats.Sorted(xs))
}

// LillieforsSorted is Lilliefors for an already-sorted sample, skipping
// the re-sort. The slice is only read. (Summing the moments in sorted
// rather than observation order can move the statistic by an ulp; the
// test's decision is unaffected.)
func LillieforsSorted(s []float64) (TestResult, error) {
	n := len(s)
	if n < 5 {
		return TestResult{}, ErrSampleSize
	}
	mean := stats.Mean(s)
	sd := stats.StdDev(s)
	if sd == 0 {
		return TestResult{}, ErrConstant
	}
	d := 0.0
	for i, x := range s {
		f := dist.NormalCDF((x - mean) / sd)
		dPlus := float64(i+1)/float64(n) - f
		dMinus := f - float64(i)/float64(n)
		d = math.Max(d, math.Max(dPlus, dMinus))
	}

	// Dallal–Wilkinson (1986) approximation.
	nf := float64(n)
	kd := d
	nd := nf
	if n > 100 {
		kd = d * math.Pow(nf/100, 0.49)
		nd = 100
	}
	p := math.Exp(-7.01256*kd*kd*(nd+2.78019) +
		2.99587*kd*math.Sqrt(nd+2.78019) - 0.122119 +
		0.974598/math.Sqrt(nd) + 1.67997/nd)
	if p > 0.1 {
		// Outside the approximation's accurate range: fall back to the
		// Stephens-modified statistic against the Lilliefors critical
		// region via a conservative transform.
		kk := (math.Sqrt(nf) - 0.01 + 0.85/math.Sqrt(nf)) * d
		switch {
		case kk <= 0.302:
			p = 1
		case kk <= 0.5:
			p = 2.76773 - 19.828315*kk + 80.709644*kk*kk -
				138.55152*kk*kk*kk + 81.218052*kk*kk*kk*kk
		case kk <= 0.9:
			p = -4.901232 + 40.662806*kk - 97.490286*kk*kk +
				94.029866*kk*kk*kk - 32.355711*kk*kk*kk*kk
		case kk <= 1.31:
			p = 6.198765 - 19.558097*kk + 23.186922*kk*kk -
				12.234627*kk*kk*kk + 2.423045*kk*kk*kk*kk
		default:
			p = 0
		}
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return TestResult{Name: "D", Stat: d, P: p}, nil
}

// AndersonDarling tests composite normality with the A² statistic and
// Stephens' case-3 (mean and variance estimated) p-value approximation.
func AndersonDarling(xs []float64) (TestResult, error) {
	if len(xs) < 8 {
		return TestResult{}, ErrSampleSize
	}
	return AndersonDarlingSorted(stats.Sorted(xs))
}

// AndersonDarlingSorted is AndersonDarling for an already-sorted sample,
// skipping the re-sort. The slice is only read.
func AndersonDarlingSorted(s []float64) (TestResult, error) {
	n := len(s)
	if n < 8 {
		return TestResult{}, ErrSampleSize
	}
	mean := stats.Mean(s)
	sd := stats.StdDev(s)
	if sd == 0 {
		return TestResult{}, ErrConstant
	}
	nf := float64(n)
	a2 := -nf
	for i := 0; i < n; i++ {
		zi := dist.NormalCDF((s[i] - mean) / sd)
		zni := dist.NormalCDF((s[n-1-i] - mean) / sd)
		// Clamp to avoid log(0) from extreme observations.
		zi = math.Min(math.Max(zi, 1e-300), 1-1e-15)
		zni = math.Min(math.Max(zni, 1e-300), 1-1e-15)
		a2 -= (2*float64(i) + 1) / nf * (math.Log(zi) + math.Log1p(-zni))
	}
	// Stephens' modification and p-value bands.
	a2star := a2 * (1 + 0.75/nf + 2.25/(nf*nf))
	var p float64
	switch {
	case a2star >= 0.6:
		p = math.Exp(1.2937 - 5.709*a2star + 0.0186*a2star*a2star)
	case a2star >= 0.34:
		p = math.Exp(0.9177 - 4.279*a2star - 1.38*a2star*a2star)
	case a2star >= 0.2:
		p = 1 - math.Exp(-8.318+42.796*a2star-59.938*a2star*a2star)
	default:
		p = 1 - math.Exp(-13.436+101.14*a2star-223.73*a2star*a2star)
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return TestResult{Name: "A²", Stat: a2, P: p}, nil
}

// Autocorrelation returns the lag-k sample autocorrelation of xs — the
// iid diagnostic behind the paper's "independent and identically
// distributed" requirement for rank statistics (§3.1.3). Values beyond
// ±2/√n indicate serial dependence (e.g. warmup drift or periodic
// interference).
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 1 || lag >= n {
		return math.NaN()
	}
	mean := stats.Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
	}
	if den == 0 {
		return math.NaN()
	}
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - mean) * (xs[i+lag] - mean)
	}
	return num / den
}

// RunsTest performs the Wald–Wolfowitz runs test for randomness around
// the median: too few runs indicate trend/drift, too many indicate
// oscillation. The p-value is two-sided via the normal approximation.
func RunsTest(xs []float64) (TestResult, error) {
	if len(xs) < 10 {
		return TestResult{}, ErrSampleSize
	}
	med := stats.Median(xs)
	// Classify against the median, dropping exact ties.
	var signs []bool
	for _, x := range xs {
		if x == med {
			continue
		}
		signs = append(signs, x > med)
	}
	if len(signs) < 10 {
		return TestResult{}, ErrConstant
	}
	var n1, n2, runs int
	for i, s := range signs {
		if s {
			n1++
		} else {
			n2++
		}
		if i == 0 || signs[i] != signs[i-1] {
			runs++
		}
	}
	if n1 == 0 || n2 == 0 {
		return TestResult{}, ErrConstant
	}
	f1, f2 := float64(n1), float64(n2)
	nf := f1 + f2
	mu := 2*f1*f2/nf + 1
	sigma2 := 2 * f1 * f2 * (2*f1*f2 - nf) / (nf * nf * (nf - 1))
	if sigma2 <= 0 {
		return TestResult{}, ErrConstant
	}
	z := (float64(runs) - mu) / math.Sqrt(sigma2)
	p := 2 * dist.NormalCDF(-math.Abs(z))
	return TestResult{Name: "runs z", Stat: z, P: p}, nil
}

// IIDDiagnosis bundles the independence diagnostics: lag-1..lag-k
// autocorrelations with their ±2/√n band and the runs test.
type IIDDiagnosis struct {
	Autocorr []float64 // lag 1..len(Autocorr)
	Band     float64   // ±2/√n significance band
	Runs     TestResult
	LooksIID bool
}

// DiagnoseIID checks xs for serial dependence using maxLag
// autocorrelations and the runs test; LooksIID is true when no
// autocorrelation leaves the band and the runs test is not significant
// at 1%.
func DiagnoseIID(xs []float64, maxLag int) (IIDDiagnosis, error) {
	if maxLag < 1 {
		maxLag = 5
	}
	if len(xs) < 20 {
		return IIDDiagnosis{}, ErrSampleSize
	}
	d := IIDDiagnosis{Band: 2 / math.Sqrt(float64(len(xs)))}
	ok := true
	for lag := 1; lag <= maxLag; lag++ {
		ac := Autocorrelation(xs, lag)
		d.Autocorr = append(d.Autocorr, ac)
		if math.Abs(ac) > d.Band {
			ok = false
		}
	}
	runs, err := RunsTest(xs)
	if err != nil {
		return d, err
	}
	d.Runs = runs
	d.LooksIID = ok && !runs.Significant(0.01)
	return d, nil
}

// NormalityPower estimates, by Monte Carlo, each normality test's power
// to reject samples drawn by `gen` at significance level alpha — the
// Razali & Wah experiment behind the paper's Rule 6 recommendation.
// Returns rejection rates in the order Shapiro–Wilk, Anderson–Darling,
// Lilliefors, Kolmogorov–Smirnov(standardized).
func NormalityPower(gen func() []float64, trials int, alpha float64) ([4]float64, error) {
	if trials < 1 {
		trials = 100
	}
	var reject [4]int
	for t := 0; t < trials; t++ {
		xs := gen()
		if sw, err := ShapiroWilk(xs); err == nil && sw.P < alpha {
			reject[0]++
		}
		if ad, err := AndersonDarling(xs); err == nil && ad.P < alpha {
			reject[1]++
		}
		if li, err := Lilliefors(xs); err == nil && li.P < alpha {
			reject[2]++
		}
		// KS with parameters estimated per sample (the naive-but-common
		// misuse; its low power is part of the point).
		mean := stats.Mean(xs)
		sd := stats.StdDev(xs)
		if sd > 0 {
			ks, err := KolmogorovSmirnov(xs, func(x float64) float64 {
				return dist.NormalCDF((x - mean) / sd)
			})
			if err == nil && ks.P < alpha {
				reject[3]++
			}
		}
	}
	var out [4]float64
	for i, r := range reject {
		out[i] = float64(r) / float64(trials)
	}
	return out, nil
}
