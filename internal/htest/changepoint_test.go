package htest

import (
	"errors"
	"math/rand/v2"
	"testing"
)

func TestPettittDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
		if i >= 120 {
			xs[i] += 3 // regime shift at index 120
		}
	}
	cp, err := Pettitt(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Significant(0.01) {
		t.Errorf("3σ shift not detected: p = %g", cp.P)
	}
	if cp.Index < 110 || cp.Index > 130 {
		t.Errorf("change located at %d, want near 119", cp.Index)
	}
	if cp.MedianAfter-cp.MedianBefore < 2 {
		t.Errorf("regime medians %g → %g do not show the shift",
			cp.MedianBefore, cp.MedianAfter)
	}
}

func TestPettittCleanSeriesNotFlagged(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 5 + 0.3*rng.NormFloat64()
	}
	cp, err := Pettitt(xs)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Significant(0.01) {
		t.Errorf("homogeneous series flagged: p = %g", cp.P)
	}
}

func TestPettittConstantAndTies(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 7
	}
	cp, err := Pettitt(xs)
	if err != nil {
		t.Fatal(err)
	}
	if cp.K != 0 || cp.P != 1 {
		t.Errorf("constant series: K=%g p=%g, want 0 and 1", cp.K, cp.P)
	}
	// Heavy ties with a real shift still detected.
	ys := make([]float64, 100)
	for i := range ys {
		ys[i] = 1
		if i >= 50 {
			ys[i] = 2
		}
	}
	cp2, err := Pettitt(ys)
	if err != nil {
		t.Fatal(err)
	}
	if !cp2.Significant(0.001) || cp2.Index != 49 {
		t.Errorf("step function: p=%g index=%d", cp2.P, cp2.Index)
	}
}

func TestPettittSampleSize(t *testing.T) {
	if _, err := Pettitt([]float64{1, 2, 3}); !errors.Is(err, ErrSampleSize) {
		t.Errorf("err = %v, want ErrSampleSize", err)
	}
}

func TestPettittOrderMatters(t *testing.T) {
	// The same values shuffled must lose the shift signal: the test is
	// about the ordered stream, not the distribution.
	rng := rand.New(rand.NewPCG(3, 3))
	xs := make([]float64, 150)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		if i >= 75 {
			xs[i] += 2.5
		}
	}
	ordered, err := Pettitt(xs)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]float64(nil), xs...)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	perm, err := Pettitt(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if perm.K >= ordered.K {
		t.Errorf("shuffled K %g >= ordered K %g; statistic ignores order", perm.K, ordered.K)
	}
}
