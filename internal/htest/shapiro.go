// Package htest implements the hypothesis tests the paper prescribes for
// analyzing and comparing nondeterministic performance measurements:
// the Shapiro–Wilk normality test (Rule 6), Student and Welch t-tests and
// one-way ANOVA for comparing means (§3.2.1), the Kruskal–Wallis rank test
// for comparing medians (§3.2.2), and the effect-size measure the paper
// recommends over bare p-values.
package htest

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/stats"
)

// Errors returned by the tests.
var (
	ErrSampleSize = errors.New("htest: sample size out of supported range")
	ErrConstant   = errors.New("htest: sample is constant")
	ErrGroups     = errors.New("htest: need at least two groups with two observations each")
)

// TestResult carries a test statistic and its p-value, along with the
// name of the statistic for reporting.
type TestResult struct {
	Name string  // e.g. "W", "F", "H", "t"
	Stat float64 // the test statistic
	P    float64 // p-value under the null hypothesis
}

// Significant reports whether the null hypothesis is rejected at level
// alpha (e.g. 0.05).
func (r TestResult) Significant(alpha float64) bool { return r.P < alpha }

// String renders the result.
func (r TestResult) String() string {
	return fmt.Sprintf("%s = %.6g, p = %.4g", r.Name, r.Stat, r.P)
}

// ShapiroWilk performs the Shapiro–Wilk test of composite normality
// following Royston's AS R94 algorithm (the approximation R's
// shapiro.test uses). Supported sample sizes are 3 <= n <= 5000; the
// paper cites Razali & Wah's finding that Shapiro–Wilk is the most
// powerful of the common normality tests but warns that, like all of
// them, it becomes oversensitive for very large samples — pair it with a
// Q-Q inspection (Rule 6).
func ShapiroWilk(xs []float64) (TestResult, error) {
	n := len(xs)
	if n < 3 || n > 5000 {
		return TestResult{}, ErrSampleSize
	}
	return ShapiroWilkSorted(stats.Sorted(xs))
}

// ShapiroWilkSorted is ShapiroWilk for an already-sorted sample (e.g. a
// stats.Sample's cached view), skipping the re-sort. The slice is only
// read.
func ShapiroWilkSorted(x []float64) (TestResult, error) {
	n := len(x)
	if n < 3 || n > 5000 {
		return TestResult{}, ErrSampleSize
	}
	if x[0] == x[n-1] {
		return TestResult{}, ErrConstant
	}

	// Expected values of normal order statistics (Blom approximation)
	// and their normalization.
	m := make([]float64, n)
	var ssm float64
	for i := 0; i < n; i++ {
		m[i] = dist.NormalQuantile((float64(i+1) - 0.375) / (float64(n) + 0.25))
		ssm += m[i] * m[i]
	}

	a := make([]float64, n)
	u := 1 / math.Sqrt(float64(n))
	rsqrt := math.Sqrt(ssm)
	if n == 3 {
		// Exact weights for the smallest case (as in R's swilk.c).
		a[0] = -math.Sqrt(0.5)
		a[2] = math.Sqrt(0.5)
	} else if n > 5 {
		an := -2.706056*ipow(u, 5) + 4.434685*ipow(u, 4) - 2.071190*ipow(u, 3) -
			0.147981*u*u + 0.221157*u + m[n-1]/rsqrt
		an1 := -3.582633*ipow(u, 5) + 5.682633*ipow(u, 4) - 1.752461*ipow(u, 3) -
			0.293762*u*u + 0.042981*u + m[n-2]/rsqrt
		phi := (ssm - 2*m[n-1]*m[n-1] - 2*m[n-2]*m[n-2]) /
			(1 - 2*an*an - 2*an1*an1)
		sp := math.Sqrt(phi)
		for i := 2; i < n-2; i++ {
			a[i] = m[i] / sp
		}
		a[n-1] = an
		a[n-2] = an1
		a[0] = -an
		a[1] = -an1
	} else {
		an := -2.706056*ipow(u, 5) + 4.434685*ipow(u, 4) - 2.071190*ipow(u, 3) -
			0.147981*u*u + 0.221157*u + m[n-1]/rsqrt
		phi := (ssm - 2*m[n-1]*m[n-1]) / (1 - 2*an*an)
		sp := math.Sqrt(phi)
		for i := 1; i < n-1; i++ {
			a[i] = m[i] / sp
		}
		a[n-1] = an
		a[0] = -an
	}

	mean := stats.Mean(x)
	var num, den float64
	for i := 0; i < n; i++ {
		num += a[i] * x[i]
		d := x[i] - mean
		den += d * d
	}
	w := num * num / den
	if w > 1 {
		w = 1 // guard against rounding slightly above 1
	}

	p := shapiroWilkP(w, n)
	return TestResult{Name: "W", Stat: w, P: p}, nil
}

// shapiroWilkP converts the W statistic into a p-value using Royston's
// normalizing transformations.
func shapiroWilkP(w float64, n int) float64 {
	nf := float64(n)
	switch {
	case n == 3:
		const stqr = math.Pi / 3 // asin(sqrt(3/4))
		p := 6 / math.Pi * (math.Asin(math.Sqrt(w)) - stqr)
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	case n <= 11:
		gamma := -2.273 + 0.459*nf
		y := -math.Log(gamma - math.Log1p(-w))
		mu := 0.5440 - 0.39978*nf + 0.025054*nf*nf - 0.0006714*nf*nf*nf
		sigma := math.Exp(1.3822 - 0.77857*nf + 0.062767*nf*nf - 0.0020322*nf*nf*nf)
		z := (y - mu) / sigma
		return 1 - dist.NormalCDF(z)
	default:
		y := math.Log1p(-w)
		lnN := math.Log(nf)
		mu := -1.5861 - 0.31082*lnN - 0.083751*lnN*lnN + 0.0038915*lnN*lnN*lnN
		sigma := math.Exp(-0.4803 - 0.082676*lnN + 0.0030302*lnN*lnN)
		z := (y - mu) / sigma
		return 1 - dist.NormalCDF(z)
	}
}

func ipow(x float64, k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= x
	}
	return r
}

// IsPlausiblyNormal is the convenience predicate behind Rule 6: it runs
// Shapiro–Wilk at the given alpha and additionally requires a straight
// Q-Q relation (correlation above 0.95) so that huge samples are not
// rejected on trivial deviations. Errors (tiny or constant samples)
// report false.
func IsPlausiblyNormal(xs []float64, alpha float64) bool {
	if len(xs) < 3 || len(xs) > 5000 {
		return false
	}
	return IsPlausiblyNormalSorted(stats.Sorted(xs), alpha)
}

// IsPlausiblyNormalSorted is IsPlausiblyNormal over an already-sorted
// sample, sharing the one sorted view between the Shapiro–Wilk test and
// the Q-Q fallback.
func IsPlausiblyNormalSorted(sorted []float64, alpha float64) bool {
	res, err := ShapiroWilkSorted(sorted)
	if err != nil {
		return false
	}
	if res.P >= alpha {
		return true
	}
	// Large samples: fall back to the Q-Q straightness diagnostic the
	// paper recommends pairing with the test.
	return len(sorted) > 1000 && stats.QQCorrelationSorted(sorted) > 0.999
}
