package htest

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/dist"
	"repro/internal/stats"
)

func TestKolmogorovSmirnovUniform(t *testing.T) {
	// Perfectly spread uniform sample against the uniform CDF: D is the
	// minimal 1/(2n) discretization gap and p should be near 1.
	n := 100
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) / float64(n)
	}
	res, err := KolmogorovSmirnov(xs, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Stat-0.005) > 1e-12 {
		t.Errorf("D = %g, want 0.005", res.Stat)
	}
	if res.P < 0.99 {
		t.Errorf("p = %g, want ≈1", res.P)
	}
}

func TestKolmogorovSmirnovRejectsWrongDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()) // log-normal
	}
	// Tested against a standard normal CDF: reject strongly.
	res, err := KolmogorovSmirnov(xs, dist.NormalCDF)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.001) {
		t.Errorf("KS failed to reject a blatant mismatch: %v", res)
	}
	if _, err := KolmogorovSmirnov(xs[:2], dist.NormalCDF); err != ErrSampleSize {
		t.Error("tiny sample should error")
	}
}

func TestKolmogorovQBounds(t *testing.T) {
	if kolmogorovQ(0) != 1 || kolmogorovQ(-1) != 1 {
		t.Error("Q(<=0) must be 1")
	}
	if q := kolmogorovQ(10); q > 1e-10 {
		t.Errorf("Q(10) = %g, want ≈0", q)
	}
	// Known value: Q(1.36) ≈ 0.0505 (the classic 5% critical point).
	if q := kolmogorovQ(1.358); math.Abs(q-0.05) > 0.002 {
		t.Errorf("Q(1.358) = %g, want ≈0.05", q)
	}
}

func TestLillieforsBehaviour(t *testing.T) {
	// Accepts normal samples most of the time.
	rejected := 0
	for i := 0; i < 100; i++ {
		xs := normalSample(60, 5, 2, uint64(i+1))
		res, err := Lilliefors(xs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.05) {
			rejected++
		}
	}
	if rejected > 20 {
		t.Errorf("Lilliefors rejected %d/100 normal samples", rejected)
	}
	// Rejects log-normal samples usually.
	rejected = 0
	for i := 0; i < 50; i++ {
		xs := lognormalSample(100, 0, 1, uint64(i+1))
		res, err := Lilliefors(xs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.05) {
			rejected++
		}
	}
	if rejected < 40 {
		t.Errorf("Lilliefors rejected only %d/50 log-normal samples", rejected)
	}
	if _, err := Lilliefors([]float64{1, 2, 3}); err != ErrSampleSize {
		t.Error("n<5 should error")
	}
	if _, err := Lilliefors([]float64{2, 2, 2, 2, 2}); err != ErrConstant {
		t.Error("constant should error")
	}
}

func TestAndersonDarlingBehaviour(t *testing.T) {
	rejected := 0
	for i := 0; i < 100; i++ {
		xs := normalSample(60, 5, 2, uint64(1000+i))
		res, err := AndersonDarling(xs)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0 || res.P > 1 {
			t.Fatalf("p = %g out of range", res.P)
		}
		if res.Significant(0.05) {
			rejected++
		}
	}
	if rejected > 20 {
		t.Errorf("AD rejected %d/100 normal samples", rejected)
	}
	rejected = 0
	for i := 0; i < 50; i++ {
		xs := lognormalSample(100, 0, 1, uint64(2000+i))
		res, err := AndersonDarling(xs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.05) {
			rejected++
		}
	}
	if rejected < 45 {
		t.Errorf("AD rejected only %d/50 log-normal samples", rejected)
	}
	if _, err := AndersonDarling(make([]float64, 5)); err == nil {
		t.Error("n<8 or constant should error")
	}
}

// TestNormalityPowerRanking reproduces Razali & Wah's finding (cited by
// Rule 6): against skewed alternatives, Shapiro–Wilk and Anderson–
// Darling dominate Lilliefors, which dominates the (misused,
// parameters-estimated) Kolmogorov–Smirnov test.
func TestNormalityPowerRanking(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 42))
	gen := func() []float64 {
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = math.Exp(0.5 * rng.NormFloat64())
		}
		return xs
	}
	power, err := NormalityPower(gen, 300, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sw, ad, li, ks := power[0], power[1], power[2], power[3]
	if !(sw >= ad-0.05) {
		t.Errorf("Shapiro–Wilk power %.2f should be ≈top (AD %.2f)", sw, ad)
	}
	if !(ad > li) {
		t.Errorf("AD power %.2f should beat Lilliefors %.2f", ad, li)
	}
	if !(li > ks) {
		t.Errorf("Lilliefors power %.2f should beat naive KS %.2f", li, ks)
	}
	if sw < 0.5 {
		t.Errorf("SW power %.2f implausibly low for this alternative", sw)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A strongly trending series has high lag-1 autocorrelation.
	trend := make([]float64, 100)
	for i := range trend {
		trend[i] = float64(i)
	}
	if ac := Autocorrelation(trend, 1); ac < 0.9 {
		t.Errorf("trend lag-1 autocorr = %g, want ≈1", ac)
	}
	// Alternating series has strongly negative lag-1 autocorrelation.
	alt := make([]float64, 100)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	if ac := Autocorrelation(alt, 1); ac > -0.9 {
		t.Errorf("alternating lag-1 autocorr = %g, want ≈-1", ac)
	}
	if !math.IsNaN(Autocorrelation(trend, 0)) || !math.IsNaN(Autocorrelation(trend, 100)) {
		t.Error("invalid lags should be NaN")
	}
	if !math.IsNaN(Autocorrelation([]float64{3, 3, 3}, 1)) {
		t.Error("constant series should be NaN")
	}
}

func TestRunsTest(t *testing.T) {
	// Alternating: far too many runs → strongly significant.
	alt := make([]float64, 50)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	res, err := RunsTest(alt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.001) || res.Stat < 0 {
		t.Errorf("alternating series: %v", res)
	}
	// Trending: far too few runs.
	trend := make([]float64, 50)
	for i := range trend {
		trend[i] = float64(i)
	}
	res, err = RunsTest(trend)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.001) || res.Stat > 0 {
		t.Errorf("trending series: %v", res)
	}
	// Random: usually not significant.
	sig := 0
	for i := 0; i < 50; i++ {
		xs := normalSample(60, 0, 1, uint64(i+500))
		res, err := RunsTest(xs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.05) {
			sig++
		}
	}
	if sig > 10 {
		t.Errorf("runs test rejected %d/50 iid samples", sig)
	}
	if _, err := RunsTest([]float64{1, 2}); err != ErrSampleSize {
		t.Error("tiny sample should error")
	}
	if _, err := RunsTest(make([]float64, 20)); err != ErrConstant {
		t.Error("constant sample should error")
	}
}

func TestDiagnoseIID(t *testing.T) {
	xs := normalSample(200, 10, 1, 99)
	d, err := DiagnoseIID(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !d.LooksIID {
		t.Errorf("iid sample misdiagnosed: autocorr %v band %g runs %v",
			d.Autocorr, d.Band, d.Runs)
	}
	if len(d.Autocorr) != 5 {
		t.Errorf("lags = %d", len(d.Autocorr))
	}
	// A drifting series must be flagged.
	drift := make([]float64, 200)
	rng := rand.New(rand.NewPCG(3, 3))
	for i := range drift {
		drift[i] = float64(i)*0.05 + rng.NormFloat64()
	}
	d2, err := DiagnoseIID(drift, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d2.LooksIID {
		t.Error("drifting series passed the iid diagnosis")
	}
	if _, err := DiagnoseIID(xs[:10], 5); err != ErrSampleSize {
		t.Error("tiny sample should error")
	}
}

func TestSortedVariantsMatchWrappers(t *testing.T) {
	// The unsorted entry points delegate to the *Sorted variants through
	// stats.Sorted, so results must be bit-identical on the same data.
	rng := rand.New(rand.NewPCG(31, 32))
	xs := make([]float64, 150)
	for i := range xs {
		xs[i] = math.Exp(0.3 * rng.NormFloat64())
	}
	sorted := stats.Sorted(xs)

	sw1, err1 := ShapiroWilk(xs)
	sw2, err2 := ShapiroWilkSorted(sorted)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if sw1 != sw2 {
		t.Errorf("ShapiroWilk %v != ShapiroWilkSorted %v", sw1, sw2)
	}

	cdf := dist.Normal{Mu: 1, Sigma: 0.4}.CDF
	ks1, err1 := KolmogorovSmirnov(xs, cdf)
	ks2, err2 := KolmogorovSmirnovSorted(sorted, cdf)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if ks1 != ks2 {
		t.Errorf("KolmogorovSmirnov %v != Sorted %v", ks1, ks2)
	}

	li1, err1 := Lilliefors(xs)
	li2, err2 := LillieforsSorted(sorted)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if li1 != li2 {
		t.Errorf("Lilliefors %v != Sorted %v", li1, li2)
	}

	ad1, err1 := AndersonDarling(xs)
	ad2, err2 := AndersonDarlingSorted(sorted)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if ad1 != ad2 {
		t.Errorf("AndersonDarling %v != Sorted %v", ad1, ad2)
	}

	for _, alpha := range []float64{0.01, 0.05} {
		if IsPlausiblyNormal(xs, alpha) != IsPlausiblyNormalSorted(sorted, alpha) {
			t.Errorf("alpha=%g: IsPlausiblyNormal disagrees with Sorted variant", alpha)
		}
	}

	// Size gates of the wrapper apply to both paths.
	if IsPlausiblyNormal(xs[:2], 0.05) {
		t.Error("n=2 cannot be plausibly normal")
	}
	big := make([]float64, 5001)
	for i := range big {
		big[i] = rng.NormFloat64()
	}
	if IsPlausiblyNormal(big, 0.05) {
		t.Error("n>5000 is outside the Shapiro-Wilk gate and must report false")
	}
}
