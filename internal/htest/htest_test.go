package htest

import (
	"math"
	"math/rand/v2"
	"testing"
)

func closeTo(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) || math.Abs(got-want) > tol {
		t.Errorf("%s = %.10g, want %.10g", name, got, want)
	}
}

func normalSample(n int, mu, sigma float64, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0xdead))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mu + sigma*rng.NormFloat64()
	}
	return xs
}

func lognormalSample(n int, mu, sigma float64, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0xbeef))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Exp(mu + sigma*rng.NormFloat64())
	}
	return xs
}

func TestShapiroWilkSymmetricTriple(t *testing.T) {
	// Equally spaced n=3 is a perfect fit: W = 1, p = 1 exactly
	// under Royston's n=3 formula.
	res, err := ShapiroWilk([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "W", res.Stat, 1, 1e-9)
	closeTo(t, "p", res.P, 1, 1e-6)
}

func TestShapiroWilkAcceptsNormal(t *testing.T) {
	// Across many normal samples, the test should rarely reject.
	rejected := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		xs := normalSample(80, 5, 2, uint64(i+1))
		res, err := ShapiroWilk(xs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stat < 0.8 || res.Stat > 1 {
			t.Fatalf("W = %g outside plausible range for normal data", res.Stat)
		}
		if res.Significant(0.05) {
			rejected++
		}
	}
	// Nominal rejection rate is 5%; allow generous slack.
	if rejected > trials/5 {
		t.Errorf("rejected %d/%d normal samples at alpha=0.05", rejected, trials)
	}
}

func TestShapiroWilkRejectsSkewed(t *testing.T) {
	rejected := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		xs := lognormalSample(100, 0, 1, uint64(i+1))
		res, err := ShapiroWilk(xs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.01) {
			rejected++
		}
	}
	if rejected < trials*9/10 {
		t.Errorf("only %d/%d log-normal samples rejected; test has no power", rejected, trials)
	}
}

func TestShapiroWilkPValueRange(t *testing.T) {
	for _, n := range []int{3, 4, 7, 11, 12, 50, 500, 4999} {
		xs := normalSample(n, 0, 1, uint64(n))
		res, err := ShapiroWilk(xs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.P < 0 || res.P > 1 || math.IsNaN(res.P) {
			t.Errorf("n=%d: p = %g outside [0,1]", n, res.P)
		}
		if res.Stat <= 0 || res.Stat > 1 {
			t.Errorf("n=%d: W = %g outside (0,1]", n, res.Stat)
		}
	}
}

func TestShapiroWilkErrors(t *testing.T) {
	if _, err := ShapiroWilk([]float64{1, 2}); err != ErrSampleSize {
		t.Errorf("n=2: err = %v", err)
	}
	if _, err := ShapiroWilk(make([]float64, 5001)); err != ErrSampleSize {
		t.Errorf("n=5001: err = %v", err)
	}
	if _, err := ShapiroWilk([]float64{4, 4, 4, 4}); err != ErrConstant {
		t.Errorf("constant: err = %v", err)
	}
}

func TestTTestPooledKnownValue(t *testing.T) {
	// Hand-computed: means 3 and 4, pooled variance 2.5,
	// t = −1/√(2.5·(1/5+1/5)) = −1, df = 8, p = 2·P(T₈ < −1) ≈ 0.34659.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 3, 4, 5, 6}
	res, err := TTest(xs, ys, false)
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "t", res.Stat, -1, 1e-12)
	closeTo(t, "p", res.P, 0.34659350708733416, 1e-6)
}

func TestTTestWelchEqualsPooledForEqualVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 3, 4, 5, 6}
	pooled, _ := TTest(xs, ys, false)
	welch, _ := TTest(xs, ys, true)
	closeTo(t, "stat match", welch.Stat, pooled.Stat, 1e-12)
	// Same variance and size → same df → same p.
	closeTo(t, "p match", welch.P, pooled.P, 1e-9)
}

func TestTTestDetectsShift(t *testing.T) {
	xs := normalSample(100, 10, 1, 1)
	ys := normalSample(100, 11, 1, 2)
	res, err := TTest(xs, ys, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.001) {
		t.Errorf("1σ shift with n=100 not detected: %v", res)
	}
}

func TestTTestErrors(t *testing.T) {
	if _, err := TTest([]float64{1}, []float64{1, 2}, true); err != ErrSampleSize {
		t.Errorf("err = %v", err)
	}
	if _, err := TTest([]float64{2, 2}, []float64{3, 3}, true); err != ErrConstant {
		t.Errorf("constant err = %v", err)
	}
}

func TestANOVAKnownValue(t *testing.T) {
	// Hand-computed: groups {1,2,3},{2,3,4},{3,4,5}: F = 3,
	// and for F(2,6): P(F > 3) = (1+3/3)⁻³ = 0.125 exactly.
	res, err := OneWayANOVA(
		[]float64{1, 2, 3},
		[]float64{2, 3, 4},
		[]float64{3, 4, 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "F", res.Stat, 3, 1e-12)
	closeTo(t, "p", res.P, 0.125, 1e-9)
	closeTo(t, "egv", res.EGV, 3, 1e-12)
	closeTo(t, "igv", res.IGV, 1, 1e-12)
	if res.DFB != 2 || res.DFW != 6 {
		t.Errorf("df = (%d, %d), want (2, 6)", res.DFB, res.DFW)
	}
	// F must not exceed the 5% critical value here (p = 0.125).
	if res.Stat > res.FCrit05 {
		t.Errorf("F = %g exceeds crit %g but p = 0.125", res.Stat, res.FCrit05)
	}
}

func TestANOVANullUniformP(t *testing.T) {
	// Under the null, p-values should not be systematically tiny.
	small := 0
	for i := 0; i < 100; i++ {
		a := normalSample(30, 5, 1, uint64(3*i+1))
		b := normalSample(30, 5, 1, uint64(3*i+2))
		c := normalSample(30, 5, 1, uint64(3*i+3))
		res, err := OneWayANOVA(a, b, c)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			small++
		}
	}
	if small > 20 {
		t.Errorf("%d/100 null ANOVAs significant at 0.05", small)
	}
}

func TestANOVADetectsDifference(t *testing.T) {
	a := normalSample(50, 10, 1, 11)
	b := normalSample(50, 10, 1, 12)
	c := normalSample(50, 12, 1, 13)
	res, err := OneWayANOVA(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.001) {
		t.Errorf("2σ group shift not detected: %v", res)
	}
}

func TestANOVAErrors(t *testing.T) {
	if _, err := OneWayANOVA([]float64{1, 2}); err != ErrGroups {
		t.Errorf("one group: err = %v", err)
	}
	if _, err := OneWayANOVA([]float64{1, 2}, []float64{3}); err != ErrGroups {
		t.Errorf("tiny group: err = %v", err)
	}
	if _, err := OneWayANOVA([]float64{1, 1}, []float64{1, 1}); err != ErrConstant {
		t.Errorf("constant: err = %v", err)
	}
}

func TestKruskalWallisKnownValue(t *testing.T) {
	// {1,2,3} vs {4,5,6}: rank sums 6 and 15,
	// H = 12/(6·7)·(36/3 + 225/3) − 3·7 = 27/7 ≈ 3.857.
	res, err := KruskalWallis([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	closeTo(t, "H", res.Stat, 27.0/7.0, 1e-12)
	// p = P(χ²₁ > 3.857) ≈ 0.0495.
	closeTo(t, "p", res.P, 0.04953461, 1e-6)
}

func TestKruskalWallisTies(t *testing.T) {
	// With ties the correction must keep H finite and the test sane.
	res, err := KruskalWallis(
		[]float64{1, 1, 2, 2, 3},
		[]float64{2, 3, 3, 4, 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Stat) || res.P < 0 || res.P > 1 {
		t.Errorf("ties broke the test: %v", res)
	}
	// All-identical data across groups is degenerate.
	if _, err := KruskalWallis([]float64{5, 5}, []float64{5, 5}); err != ErrConstant {
		t.Errorf("all-ties: err = %v", err)
	}
}

func TestKruskalWallisDetectsMedianShiftInSkewedData(t *testing.T) {
	// The Fig 3 scenario: two overlapping skewed distributions whose
	// medians differ slightly but significantly.
	xs := lognormalSample(2000, 0.00, 0.4, 100)
	ys := lognormalSample(2000, 0.08, 0.4, 200)
	sig, res, err := CompareMedians(xs, ys, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !sig {
		t.Errorf("median shift not detected: %v", res)
	}
}

func TestKruskalWallisNull(t *testing.T) {
	small := 0
	for i := 0; i < 100; i++ {
		xs := lognormalSample(50, 0, 0.5, uint64(2*i+1))
		ys := lognormalSample(50, 0, 0.5, uint64(2*i+2))
		res, err := KruskalWallis(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			small++
		}
	}
	if small > 20 {
		t.Errorf("%d/100 null KW tests significant", small)
	}
}

func TestEffectSize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 3, 4, 5, 6}
	e, err := EffectSize(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// means differ by −1, pooled within-group variance 2.5 → E = −0.632.
	closeTo(t, "E", e, -1/math.Sqrt(2.5), 1e-12)
	if _, err := EffectSize([]float64{1}, ys); err == nil {
		t.Error("tiny sample should error")
	}
}

func TestIsPlausiblyNormal(t *testing.T) {
	if !IsPlausiblyNormal(normalSample(200, 3, 1, 77), 0.05) {
		t.Error("normal sample misclassified")
	}
	if IsPlausiblyNormal(lognormalSample(200, 0, 1, 78), 0.05) {
		t.Error("log-normal sample misclassified")
	}
	if IsPlausiblyNormal([]float64{1, 2}, 0.05) {
		t.Error("tiny sample cannot be classified normal")
	}
}

func TestTestResultHelpers(t *testing.T) {
	r := TestResult{Name: "t", Stat: 2.5, P: 0.01}
	if !r.Significant(0.05) || r.Significant(0.005) {
		t.Error("Significant threshold logic wrong")
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestPairedTTest(t *testing.T) {
	// Paired design: per-instance noise is large but the per-pair shift
	// is consistent — the paired test sees it, an unpaired test may not.
	rng := rand.New(rand.NewPCG(31, 31))
	n := 30
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		instance := 100 * rng.Float64() // huge instance-to-instance spread
		xs[i] = instance + 0.05*rng.NormFloat64()
		ys[i] = instance + 0.2 + 0.05*rng.NormFloat64() // consistent +0.2
	}
	paired, err := PairedTTest(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !paired.Significant(0.001) {
		t.Errorf("paired test missed the consistent shift: %v", paired)
	}
	unpaired, err := TTest(xs, ys, true)
	if err != nil {
		t.Fatal(err)
	}
	if unpaired.Significant(0.05) {
		t.Errorf("unpaired test should drown in instance variance: %v", unpaired)
	}
	if _, err := PairedTTest(xs[:3], ys); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := PairedTTest([]float64{1}, []float64{2}); err != ErrSampleSize {
		t.Error("tiny sample should error")
	}
	if _, err := PairedTTest([]float64{1, 2}, []float64{2, 3}); err != ErrConstant {
		t.Error("constant differences should error")
	}
}

func TestMeanDifferenceCI(t *testing.T) {
	xs := normalSample(200, 10, 1, 51)
	ys := normalSample(200, 11, 1, 52)
	lo, hi, err := MeanDifferenceCI(xs, ys, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 1 || hi < 1 {
		t.Errorf("CI [%g, %g] misses the true difference 1", lo, hi)
	}
	if lo <= 0 {
		t.Errorf("CI [%g, %g] should exclude 0 at n=200", lo, hi)
	}
	if _, _, err := MeanDifferenceCI([]float64{1}, ys, 0.95); err != ErrSampleSize {
		t.Error("tiny sample should error")
	}
	if _, _, err := MeanDifferenceCI([]float64{2, 2}, []float64{3, 3}, 0.95); err != ErrConstant {
		t.Error("constant samples should error")
	}
	// Invalid confidence falls back.
	lo2, hi2, err := MeanDifferenceCI(xs, ys, 5)
	if err != nil || lo2 >= hi2 {
		t.Errorf("fallback confidence: [%g, %g] %v", lo2, hi2, err)
	}
}
