package htest

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/stats"
)

// TTest performs a two-sample t-test of the null hypothesis that both
// samples share the same mean. With welch=true (recommended), the Welch
// variant with the Welch–Satterthwaite degrees of freedom is used and
// equal variances are not assumed; otherwise the classic pooled-variance
// Student test is performed. The returned p-value is two-sided.
func TTest(xs, ys []float64, welch bool) (TestResult, error) {
	nx, ny := len(xs), len(ys)
	if nx < 2 || ny < 2 {
		return TestResult{}, ErrSampleSize
	}
	mx, my := stats.Mean(xs), stats.Mean(ys)
	vx, vy := stats.Variance(xs), stats.Variance(ys)
	if vx == 0 && vy == 0 {
		return TestResult{}, ErrConstant
	}
	fx, fy := float64(nx), float64(ny)

	var tstat, df float64
	if welch {
		se2 := vx/fx + vy/fy
		tstat = (mx - my) / math.Sqrt(se2)
		df = se2 * se2 / (vx*vx/(fx*fx*(fx-1)) + vy*vy/(fy*fy*(fy-1)))
	} else {
		sp2 := ((fx-1)*vx + (fy-1)*vy) / (fx + fy - 2)
		tstat = (mx - my) / math.Sqrt(sp2*(1/fx+1/fy))
		df = fx + fy - 2
	}
	td := dist.StudentT{Nu: df}
	p := 2 * td.CDF(-math.Abs(tstat))
	return TestResult{Name: "t", Stat: tstat, P: p}, nil
}

// ANOVAResult extends TestResult with the variance decomposition the
// paper spells out in §3.2.1: egv is the inter-group (explained)
// variability and igv the intra-group (residual) variability.
type ANOVAResult struct {
	TestResult
	EGV     float64 // between-group mean square
	IGV     float64 // within-group mean square
	DFB     int     // between-group degrees of freedom (k−1)
	DFW     int     // within-group degrees of freedom (N−k)
	FCrit05 float64 // critical F at alpha = 0.05
}

// OneWayANOVA tests whether k groups of measurements share a common mean
// (null hypothesis: all means equal), per §3.2.1. It requires iid
// near-normal data with similar spreads; groups may have different sizes.
func OneWayANOVA(groups ...[]float64) (ANOVAResult, error) {
	k := len(groups)
	if k < 2 {
		return ANOVAResult{}, ErrGroups
	}
	totalN := 0
	for _, g := range groups {
		if len(g) < 2 {
			return ANOVAResult{}, ErrGroups
		}
		totalN += len(g)
	}
	// Grand mean.
	var grand float64
	for _, g := range groups {
		for _, v := range g {
			grand += v
		}
	}
	grand /= float64(totalN)

	var ssb, ssw float64
	for _, g := range groups {
		gm := stats.Mean(g)
		d := gm - grand
		ssb += float64(len(g)) * d * d
		for _, v := range g {
			e := v - gm
			ssw += e * e
		}
	}
	dfb := k - 1
	dfw := totalN - k
	egv := ssb / float64(dfb)
	igv := ssw / float64(dfw)
	if igv == 0 {
		return ANOVAResult{}, ErrConstant
	}
	f := egv / igv
	fd := dist.FisherF{D1: float64(dfb), D2: float64(dfw)}
	p := 1 - fd.CDF(f)
	return ANOVAResult{
		TestResult: TestResult{Name: "F", Stat: f, P: p},
		EGV:        egv,
		IGV:        igv,
		DFB:        dfb,
		DFW:        dfw,
		FCrit05:    fd.Quantile(0.95),
	}, nil
}

// KruskalWallis performs the nonparametric Kruskal–Wallis one-way
// analysis of variance by ranks (§3.2.2): the null hypothesis is that all
// groups share the same median. The statistic is corrected for ties, and
// the p-value uses the χ²(k−1) large-sample approximation (the paper
// notes exact tables exist for n < 5 per group; the χ² approximation is
// what practical tools use).
func KruskalWallis(groups ...[]float64) (TestResult, error) {
	k := len(groups)
	if k < 2 {
		return TestResult{}, ErrGroups
	}
	type obs struct {
		v     float64
		group int
	}
	var all []obs
	for gi, g := range groups {
		if len(g) < 2 {
			return TestResult{}, ErrGroups
		}
		for _, v := range g {
			all = append(all, obs{v, gi})
		}
	}
	n := len(all)
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Mid-ranks with tie correction accumulator.
	ranks := make([]float64, n)
	tieCorrection := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for t := i; t < j; t++ {
			ranks[t] = r
		}
		ties := float64(j - i)
		tieCorrection += ties*ties*ties - ties
		i = j
	}

	rankSum := make([]float64, k)
	groupN := make([]float64, k)
	for i, o := range all {
		rankSum[o.group] += ranks[i]
		groupN[o.group]++
	}
	nf := float64(n)
	h := 0.0
	for gi := 0; gi < k; gi++ {
		h += rankSum[gi] * rankSum[gi] / groupN[gi]
	}
	h = 12/(nf*(nf+1))*h - 3*(nf+1)

	// Ties correction.
	denom := 1 - tieCorrection/(nf*nf*nf-nf)
	if denom <= 0 {
		return TestResult{}, ErrConstant
	}
	h /= denom

	chi := dist.ChiSquared{K: float64(k - 1)}
	p := 1 - chi.CDF(h)
	return TestResult{Name: "H", Stat: h, P: p}, nil
}

// EffectSize returns the standardized difference between the means of two
// experiments relative to the pooled within-group variability,
// E = (x̄_i − x̄_j)/√igv — the measure the paper recommends (after
// refs [29, 37, 55]) because significance tests alone can mislead for
// small effects. The magnitude follows Cohen's conventional bands:
// |E| ≈ 0.2 small, 0.5 medium, 0.8 large.
func EffectSize(xs, ys []float64) (float64, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return math.NaN(), ErrSampleSize
	}
	res, err := OneWayANOVA(xs, ys)
	if err != nil {
		return math.NaN(), err
	}
	return (stats.Mean(xs) - stats.Mean(ys)) / math.Sqrt(res.IGV), nil
}

// CompareMedians is the §3.2 decision helper for two samples: it runs
// Kruskal–Wallis on the pair and reports whether the medians differ
// significantly at level alpha.
func CompareMedians(xs, ys []float64, alpha float64) (bool, TestResult, error) {
	res, err := KruskalWallis(xs, ys)
	if err != nil {
		return false, res, err
	}
	return res.Significant(alpha), res, nil
}

// PairedTTest tests whether the mean of paired differences yᵢ − xᵢ is
// zero — the right design when the same workload instances are measured
// under two configurations (blocking removes instance-to-instance
// variance). Two-sided p-value.
func PairedTTest(xs, ys []float64) (TestResult, error) {
	if len(xs) != len(ys) {
		return TestResult{}, fmt.Errorf("htest: paired samples differ in length: %d vs %d",
			len(xs), len(ys))
	}
	if len(xs) < 2 {
		return TestResult{}, ErrSampleSize
	}
	diffs := make([]float64, len(xs))
	for i := range xs {
		diffs[i] = ys[i] - xs[i]
	}
	sd := stats.StdDev(diffs)
	if sd == 0 {
		return TestResult{}, ErrConstant
	}
	n := float64(len(diffs))
	tstat := stats.Mean(diffs) / (sd / math.Sqrt(n))
	td := dist.StudentT{Nu: n - 1}
	return TestResult{Name: "t", Stat: tstat, P: 2 * td.CDF(-math.Abs(tstat))}, nil
}

// MeanDifferenceCI returns the Welch confidence interval for
// mean(ys) − mean(xs): the two-sample analogue of a mean CI, non-
// overlap with zero being the §3.2 significance criterion.
func MeanDifferenceCI(xs, ys []float64, confidence float64) (lo, hi float64, err error) {
	if len(xs) < 2 || len(ys) < 2 {
		return 0, 0, ErrSampleSize
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	vx, vy := stats.Variance(xs), stats.Variance(ys)
	fx, fy := float64(len(xs)), float64(len(ys))
	se2 := vx/fx + vy/fy
	if se2 == 0 {
		return 0, 0, ErrConstant
	}
	df := se2 * se2 / (vx*vx/(fx*fx*(fx-1)) + vy*vy/(fy*fy*(fy-1)))
	tcrit := dist.StudentT{Nu: df}.Quantile(1 - (1-confidence)/2)
	diff := stats.Mean(ys) - stats.Mean(xs)
	half := tcrit * math.Sqrt(se2)
	return diff - half, diff + half, nil
}
