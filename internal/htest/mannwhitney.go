package htest

import (
	"math"
	"sort"

	"repro/internal/dist"
)

// MannWhitneyResult extends TestResult with the U statistics and the
// rank-biserial correlation, the effect size that belongs to a rank
// test (Cohen-style standardized mean differences assume the means are
// the quantity of interest, which §3.1.3 argues against for skewed
// measurement data).
type MannWhitneyResult struct {
	TestResult
	U1, U2 float64 // U for the first and second sample (U1 + U2 = n1·n2)
	// RankBiserial is r = 2·U1/(n1·n2) − 1 ∈ [−1, 1]: the difference
	// between the probability that a random x exceeds a random y and
	// the converse. 0 means stochastic equality; +1 complete
	// superiority of xs; −1 of ys.
	RankBiserial float64
}

// MannWhitney performs the two-sample Mann–Whitney (Wilcoxon rank-sum)
// test of the null hypothesis that both samples come from the same
// distribution — the two-group specialization of the Kruskal–Wallis
// test §3.2.2 recommends when normality cannot be assumed. Ties are
// handled with mid-ranks and the tie-corrected variance; the two-sided
// p-value uses the continuity-corrected normal approximation (the
// regime practical tools use; exact tables only matter below n ≈ 8).
//
// Both samples being entirely one tied value yields p = 1 (no
// evidence) rather than an error, so constant-but-equal measurement
// streams compare as indistinguishable.
func MannWhitney(xs, ys []float64) (MannWhitneyResult, error) {
	n1, n2 := len(xs), len(ys)
	if n1 < 2 || n2 < 2 {
		return MannWhitneyResult{}, ErrSampleSize
	}
	type obs struct {
		v      float64
		second bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range xs {
		all = append(all, obs{v, false})
	}
	for _, v := range ys {
		all = append(all, obs{v, true})
	}
	n := len(all)
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Mid-ranks and the tie-correction term Σ(t³−t).
	rankSum1 := 0.0
	tieCorrection := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for t := i; t < j; t++ {
			if !all[t].second {
				rankSum1 += r
			}
		}
		ties := float64(j - i)
		tieCorrection += ties*ties*ties - ties
		i = j
	}

	f1, f2 := float64(n1), float64(n2)
	nf := float64(n)
	u1 := rankSum1 - f1*(f1+1)/2
	u2 := f1*f2 - u1
	res := MannWhitneyResult{
		U1:           u1,
		U2:           u2,
		RankBiserial: 2*u1/(f1*f2) - 1,
	}

	mean := f1 * f2 / 2
	variance := f1 * f2 / 12 * (nf + 1 - tieCorrection/(nf*(nf-1)))
	if variance <= 0 {
		// Every observation is the same tied value: the samples are
		// indistinguishable by rank.
		res.TestResult = TestResult{Name: "U", Stat: u1, P: 1}
		return res, nil
	}
	// Continuity correction: shrink |U − mean| by ½ before normalizing.
	d := u1 - mean
	switch {
	case d > 0.5:
		d -= 0.5
	case d < -0.5:
		d += 0.5
	default:
		d = 0
	}
	z := d / math.Sqrt(variance)
	p := 2 * dist.NormalCDF(-math.Abs(z))
	if p > 1 {
		p = 1
	}
	res.TestResult = TestResult{Name: "U", Stat: u1, P: p}
	return res, nil
}
