// Package shard is the distributed-campaign control plane: it
// partitions a sweep's canonical config order into shard manifests,
// runs each shard as an independent journaled campaign in its own
// executor process, supervises those executors (heartbeats, stall
// detection, reassignment with backoff), and merges the shard journals
// back into one report that is byte-identical to the single-process
// run.
//
// The design leans on two earlier guarantees: the per-config seed table
// makes every unit independently reproducible (its samples depend only
// on its own seed and config, never on which executor ran it or in what
// order), and the write-ahead CRC journal makes every unit resumable
// bit-for-bit after a crash. Sharding therefore changes only wall-clock
// time and failure exposure — never a reported byte. What remains for
// this package is the part the paper's Rules 6 and 9 demand and naive
// multi-machine harnesses skip (Hunold & Carpen-Amarie): refusing to
// pool journals whose recorded setup drifted, accounting every shard
// lost to exhausted retries explicitly instead of silently dropping it,
// and running a change-point check at every merge seam so cross-shard
// environment contamination is detected rather than averaged away.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/campaign"
	"repro/internal/rules"
)

// FormatVersion identifies the on-disk sweep/shard manifest layout.
const FormatVersion = 1

// On-disk layout of a sweep directory:
//
//	<dir>/sweep.json             the SweepManifest
//	<dir>/shard-000/shard.json   one Manifest per shard
//	<dir>/shard-000/heartbeat.json
//	<dir>/shard-000/done.json    written when the shard completes
//	<dir>/shard-000/units/<id>/  one journaled campaign per unit
//	<dir>/report.txt             the canonical merged report
//	<dir>/merged.json            the merged manifest (per-shard record)
const (
	SweepFile    = "sweep.json"
	ManifestFile = "shard.json"
	DoneFile     = "done.json"
	UnitsDir     = "units"
	ReportFile   = "report.txt"
	MergedFile   = "merged.json"
)

// UnitResultFile marks a completed unit inside its campaign directory;
// a reassigned executor skips units that carry it instead of
// re-measuring completed observations.
const UnitResultFile = "result.json"

// ShardDirName returns the directory name of shard i.
func ShardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// Unit is one independently reproducible config of a sweep: its
// canonical ID, its seed from the per-config seed table, the hash of
// its full configuration, and the opaque configuration itself (whatever
// the executor's UnitRunner needs to rebuild the measurement).
type Unit struct {
	ID         string          `json:"id"`
	Seed       uint64          `json:"seed"`
	ConfigHash string          `json:"config_hash"`
	Config     json.RawMessage `json:"config,omitempty"`
}

// SweepManifest pins a sharded sweep: the canonical unit order, the
// fault fingerprint shared by every unit, the Rule 9 environment block,
// and the partition width. SweepHash is the sweep's identity — the hash
// of the canonical unit list — and deliberately excludes NumShards:
// repartitioning the same sweep is the same experiment.
type SweepManifest struct {
	Version          int               `json:"version"`
	Name             string            `json:"name,omitempty"`
	Units            []Unit            `json:"units"`
	NumShards        int               `json:"num_shards"`
	FaultFingerprint string            `json:"fault_fingerprint"`
	Environment      rules.Environment `json:"environment"`
	SweepHash        string            `json:"sweep_hash"`
	CreatedAt        time.Time         `json:"created_at"`
	// Journal selects the unit journal format ("" or "v1" for JSONL,
	// "v2" for chunked binary; campaign.ParseFormat spellings). Like
	// NumShards it is deliberately outside SweepHash: the format is
	// storage, not experiment identity — the same sweep journaled either
	// way merges to byte-identical reports.
	Journal string `json:"journal,omitempty"`
}

// Manifest is one shard's manifest: a contiguous slice of the sweep's
// canonical unit order, bound to the sweep by SweepHash so a merge can
// refuse a shard directory that drifted from (or never belonged to)
// the sweep it sits in.
type Manifest struct {
	Version          int               `json:"version"`
	SweepName        string            `json:"sweep_name,omitempty"`
	SweepHash        string            `json:"sweep_hash"`
	FaultFingerprint string            `json:"fault_fingerprint"`
	Index            int               `json:"index"`
	NumShards        int               `json:"num_shards"`
	Units            []Unit            `json:"units"`
	Environment      rules.Environment `json:"environment"`
	CreatedAt        time.Time         `json:"created_at"`
	// Journal is the sweep's unit journal format, copied to every shard
	// so an executor started from the shard manifest alone uses the
	// format the sweep chose. Not part of any identity hash.
	Journal string `json:"journal,omitempty"`
}

// Errors of the shard layer.
var (
	// ErrBadSweep reports an invalid sweep definition.
	ErrBadSweep = errors.New("shard: invalid sweep")
	// ErrSweepExists reports NewSweep on a directory already holding one.
	ErrSweepExists = errors.New("shard: directory already holds a sweep")
	// ErrNoSweep reports a load on a directory without a sweep manifest.
	ErrNoSweep = errors.New("shard: no sweep in directory")
	// ErrShardDrift reports a shard or unit directory whose recorded
	// identity does not match the sweep that claims it (Rule 9).
	ErrShardDrift = errors.New("shard: manifest drift, merge refused")
)

// hashSweep computes the sweep identity: the canonical unit list plus
// the shared fault fingerprint, under the format version.
func hashSweep(version int, units []Unit, faultFP string) (string, error) {
	return campaign.HashJSON(struct {
		Version          int    `json:"version"`
		Units            []Unit `json:"units"`
		FaultFingerprint string `json:"fault_fingerprint"`
	}{version, units, faultFP})
}

// NewSweep validates a sweep definition and computes its identity hash.
// Units must be non-empty with unique, filesystem-safe IDs; shards must
// be in [1, len(units)].
func NewSweep(name string, units []Unit, faultFP string, env rules.Environment, shards int) (SweepManifest, error) {
	if len(units) == 0 {
		return SweepManifest{}, fmt.Errorf("%w: no units", ErrBadSweep)
	}
	if shards < 1 || shards > len(units) {
		return SweepManifest{}, fmt.Errorf("%w: %d shard(s) for %d unit(s); need 1 ≤ shards ≤ units",
			ErrBadSweep, shards, len(units))
	}
	seen := make(map[string]bool, len(units))
	for _, u := range units {
		if !safeID(u.ID) {
			return SweepManifest{}, fmt.Errorf("%w: unit ID %q is not filesystem-safe ([A-Za-z0-9._-]+, no leading dot)", ErrBadSweep, u.ID)
		}
		if seen[u.ID] {
			return SweepManifest{}, fmt.Errorf("%w: duplicate unit ID %q", ErrBadSweep, u.ID)
		}
		seen[u.ID] = true
	}
	h, err := hashSweep(FormatVersion, units, faultFP)
	if err != nil {
		return SweepManifest{}, fmt.Errorf("shard: hashing sweep: %w", err)
	}
	return SweepManifest{
		Version:          FormatVersion,
		Name:             name,
		Units:            units,
		NumShards:        shards,
		FaultFingerprint: faultFP,
		Environment:      env,
		SweepHash:        h,
		CreatedAt:        time.Now().UTC(),
	}, nil
}

// safeID accepts IDs that are usable verbatim as directory names.
func safeID(id string) bool {
	if id == "" || id[0] == '.' {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return true
}

// Partition splits n units into `shards` contiguous [start, end) ranges
// of near-equal size, in canonical order. Contiguity is deliberate: the
// merge seams between shards are then single points in the canonical
// stream, where the Rule 6 change-point check can localize cross-shard
// contamination.
func Partition(n, shards int) [][2]int {
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	out := make([][2]int, shards)
	for i := 0; i < shards; i++ {
		out[i] = [2]int{i * n / shards, (i + 1) * n / shards}
	}
	return out
}

// Shards materializes the sweep's shard manifests from its partition.
func (s SweepManifest) Shards() []Manifest {
	ranges := Partition(len(s.Units), s.NumShards)
	out := make([]Manifest, len(ranges))
	for i, r := range ranges {
		out[i] = Manifest{
			Version:          s.Version,
			SweepName:        s.Name,
			SweepHash:        s.SweepHash,
			FaultFingerprint: s.FaultFingerprint,
			Index:            i,
			NumShards:        len(ranges),
			Units:            s.Units[r[0]:r[1]],
			Environment:      s.Environment,
			CreatedAt:        s.CreatedAt,
			Journal:          s.Journal,
		}
	}
	return out
}

// Create writes the sweep directory: sweep.json plus one shard
// directory per partition, each carrying its shard manifest. It refuses
// a directory that already holds a sweep.
func Create(dir string, s SweepManifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, SweepFile)); err == nil {
		return fmt.Errorf("%w: %s", ErrSweepExists, dir)
	}
	for _, m := range s.Shards() {
		sd := filepath.Join(dir, ShardDirName(m.Index))
		if err := os.MkdirAll(filepath.Join(sd, UnitsDir), 0o755); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		if err := writeJSON(filepath.Join(sd, ManifestFile), m); err != nil {
			return err
		}
	}
	return writeJSON(filepath.Join(dir, SweepFile), s)
}

// LoadSweep reads and re-verifies a sweep manifest: the stored
// SweepHash must match the recomputed hash of the unit list, so a
// hand-edited sweep (changed seeds, reordered units) is refused rather
// than silently merged.
func LoadSweep(dir string) (SweepManifest, error) {
	var s SweepManifest
	if err := readJSON(filepath.Join(dir, SweepFile), &s); err != nil {
		if os.IsNotExist(err) {
			return s, fmt.Errorf("%w: %s", ErrNoSweep, dir)
		}
		return s, fmt.Errorf("shard: reading sweep manifest: %w", err)
	}
	h, err := hashSweep(s.Version, s.Units, s.FaultFingerprint)
	if err != nil {
		return s, fmt.Errorf("shard: hashing sweep: %w", err)
	}
	if h != s.SweepHash {
		return s, fmt.Errorf("%w: mismatched field(s): sweep hash (recorded %s, recomputed %s)",
			ErrShardDrift, short(s.SweepHash), short(h))
	}
	return s, nil
}

// LoadManifest reads one shard directory's manifest.
func LoadManifest(shardDir string) (Manifest, error) {
	var m Manifest
	if err := readJSON(filepath.Join(shardDir, ManifestFile), &m); err != nil {
		return m, fmt.Errorf("shard: reading shard manifest: %w", err)
	}
	return m, nil
}

// UnitDir returns the campaign directory of unit id inside a shard.
func UnitDir(shardDir, id string) string {
	return filepath.Join(shardDir, UnitsDir, id)
}

// writeJSON writes v as indented JSON via a temp file + rename, so a
// crash never publishes a half-written manifest under the final name.
func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding %s: %w", filepath.Base(path), err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// readJSON reads path into v, passing through os.IsNotExist errors.
func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("corrupt %s: %w", filepath.Base(path), err)
	}
	return nil
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
