package shard

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/rules"
)

// seamAlpha is the significance level of the cross-shard seam check —
// the same 1% the suspend/resume boundary check uses.
const seamAlpha = 0.01

// mergeConfidence is the confidence level of the merged report's
// per-unit intervals. It is fixed (not read from per-unit plans) so the
// merged report is a pure function of the journal bytes.
const mergeConfidence = 0.95

// UnitReport is one unit's contribution to a merged report, recomputed
// entirely from its journal (the completion sentinel is trusted only as
// a completion marker).
type UnitReport struct {
	Unit  Unit
	Shard int
	// Started: the unit's campaign directory exists. Completed: its
	// completion sentinel does. Lost: not completed — its shard was
	// abandoned (or the sweep merged early); the unit's missing
	// observations are explicit losses, never silent gaps.
	Started   bool
	Completed bool
	Lost      bool
	// Torn reports a dropped torn tail in the unit's journal.
	Torn bool
	// Stop is the completion verdict from the sentinel ("" when lost).
	Stop bench.StopReason
	// Replay accounting, recomputed from the journal.
	N       int
	Warmup  int
	Retries int
	Losses  int
	Panics  int
	// Analysis is bench.Analyze over the journaled samples at the merge
	// confidence; Analyzed is false when too few samples survived.
	Analysis bench.Result
	Analyzed bool
	// EnvFingerprint is the hash of the environment recorded in the
	// unit's manifest (the executor that measured it).
	EnvFingerprint string

	samples []float64
}

// ShardReport summarizes one shard in the merged manifest: its env
// fingerprint is the Rule 9 record of which environment its executor
// measured in; Host/HostFingerprint name the machine when the shard ran
// under a remote worker (absent for single-machine runs).
type ShardReport struct {
	Index           int    `json:"index"`
	Units           int    `json:"units"`
	Completed       bool   `json:"completed"`
	Attempt         int    `json:"attempt,omitempty"` // completing attempt
	EnvFingerprint  string `json:"env_fingerprint,omitempty"`
	Host            string `json:"host,omitempty"`
	HostFingerprint string `json:"host_fingerprint,omitempty"`
}

// HostFile records, inside a shard directory, which machine's worker
// completed the shard — written by the remote coordinator, absent for
// local executors. It feeds merge-time stratification, never the
// canonical report bytes.
const HostFile = "host.json"

// HostRecord is the per-shard host provenance (host.json).
type HostRecord struct {
	Hostname       string `json:"hostname"`
	EnvFingerprint string `json:"env_fingerprint"`
	WorkerID       string `json:"worker_id,omitempty"`
	Addr           string `json:"addr,omitempty"`
	Attempt        int    `json:"attempt,omitempty"`
}

// WriteHost records host provenance into a shard directory.
func WriteHost(shardDir string, h HostRecord) error {
	return writeJSON(filepath.Join(shardDir, HostFile), h)
}

// LoadHost reads a shard's host provenance; ok is false when the shard
// ran locally (no record).
func LoadHost(shardDir string) (HostRecord, bool) {
	var h HostRecord
	if err := readJSON(filepath.Join(shardDir, HostFile), &h); err != nil {
		return HostRecord{}, false
	}
	return h, true
}

// HostStratum groups the shards one host measured — the stratification
// unit for cross-host comparisons (Kalibera & Jones: treat per-host
// heterogeneity as a blocking factor, not noise).
type HostStratum struct {
	HostFingerprint string  `json:"host_fingerprint"`
	Host            string  `json:"host,omitempty"`
	Shards          []int   `json:"shards"`
	Units           int     `json:"units"`
	Samples         int     `json:"samples"`
	MedianDev       float64 `json:"median_dev"` // median |v/median(unit)−1| within the stratum
}

// SeamCheck is the Rule 6 contamination check at one merge seam: a
// Pettitt change-point test over the median-normalized concatenated
// sample stream, asking whether a significant shift localizes exactly
// at the boundary between two shards — the signature of one executor
// measuring in a drifted environment.
type SeamCheck struct {
	Left     int     `json:"left"`
	Right    int     `json:"right"`
	Boundary int     `json:"boundary"` // sample index of the seam
	P        float64 `json:"p"`
	Drift    bool    `json:"drift"`
	Checked  bool    `json:"checked"`
	// CrossHost marks a seam whose two shards ran on different hosts. A
	// shift there is stratified (expected between-machines variation,
	// reported per stratum) rather than flagged as contamination — the
	// same shift between same-host shards keeps its Rule 6 alarm.
	CrossHost bool `json:"cross_host,omitempty"`
}

// MergeReport is a merged sweep: per-unit analyses in canonical order,
// per-shard records, seam checks, and explicit loss accounting.
type MergeReport struct {
	Sweep    SweepManifest
	Units    []UnitReport
	Shards   []ShardReport
	Seams    []SeamCheck
	Strata   []HostStratum // one per distinct host fingerprint, ≥2 hosts only
	Findings []rules.Finding

	UnitsMeasured int
	UnitsLost     int
	// Stop is the campaign-level verdict: StopDegraded when any unit was
	// lost, empty when every unit was measured.
	Stop bench.StopReason
}

// Merge reads a sweep directory and merges its shard journals into one
// report. It refuses (Rule 9) when a shard manifest drifted from the
// sweep or a unit journal's recorded manifest drifted from the unit the
// sweep pinned — naming exactly which fields mismatch. Units whose
// shards were abandoned surface as explicit losses and degrade the
// campaign verdict; they never fail the merge.
//
// The merged per-unit numbers are recomputed purely from journal bytes,
// so the canonical report (WriteReport) is byte-identical however many
// executors measured the sweep and however many times shards were
// reassigned.
func Merge(sweepDir string) (*MergeReport, error) {
	sw, err := LoadSweep(sweepDir)
	if err != nil {
		return nil, err
	}
	rep := &MergeReport{Sweep: sw}
	for _, want := range sw.Shards() {
		dir := filepath.Join(sweepDir, ShardDirName(want.Index))
		got, err := LoadManifest(dir)
		if err != nil {
			return nil, err
		}
		if err := checkShardManifest(got, want); err != nil {
			return nil, fmt.Errorf("%s: %w", ShardDirName(want.Index), err)
		}
		sr := ShardReport{Index: want.Index, Units: len(want.Units)}
		if d, ok := LoadDone(dir); ok {
			sr.Completed = true
			sr.Attempt = d.Attempt
		}
		if h, ok := LoadHost(dir); ok {
			sr.Host = h.Hostname
			sr.HostFingerprint = h.EnvFingerprint
		}
		for _, u := range want.Units {
			ur, err := mergeUnit(dir, sw, want.Index, u)
			if err != nil {
				return nil, fmt.Errorf("shard %d unit %s: %w", want.Index, u.ID, err)
			}
			if sr.EnvFingerprint == "" {
				sr.EnvFingerprint = ur.EnvFingerprint
			} else if ur.EnvFingerprint != "" && ur.EnvFingerprint != sr.EnvFingerprint {
				rep.Findings = append(rep.Findings, rules.Finding{
					Rule:     9,
					Severity: rules.Warning,
					Message: fmt.Sprintf("shard %d: unit %s was measured under a different environment "+
						"fingerprint (%s) than its shard siblings (%s): executors drifted mid-shard",
						want.Index, u.ID, short(ur.EnvFingerprint), short(sr.EnvFingerprint)),
				})
			}
			rep.Units = append(rep.Units, ur)
		}
		rep.Shards = append(rep.Shards, sr)
	}
	rep.account()
	rep.checkSeams()
	rep.buildStrata()
	return rep, nil
}

// checkShardManifest verifies a shard directory's recorded manifest
// against the one the sweep implies, naming every drifted field. The
// Journal format field is deliberately not compared: it is storage,
// not experiment identity — shards journaled in different formats
// still merge to the same report (the merge replays journal records,
// whatever bytes encode them).
func checkShardManifest(got, want Manifest) error {
	var fields []string
	mismatch := func(field, rec, cur string) {
		fields = append(fields, fmt.Sprintf("%s (recorded %s, expected %s)", field, rec, cur))
	}
	if got.Version != want.Version {
		mismatch("shard format version", fmt.Sprintf("v%d", got.Version), fmt.Sprintf("v%d", want.Version))
	}
	if got.SweepHash != want.SweepHash {
		mismatch("sweep hash", short(got.SweepHash), short(want.SweepHash))
	}
	if got.FaultFingerprint != want.FaultFingerprint {
		mismatch("fault-schedule fingerprint", short(got.FaultFingerprint), short(want.FaultFingerprint))
	}
	if got.Index != want.Index {
		mismatch("shard index", fmt.Sprint(got.Index), fmt.Sprint(want.Index))
	}
	if len(got.Units) != len(want.Units) {
		mismatch("unit count", fmt.Sprint(len(got.Units)), fmt.Sprint(len(want.Units)))
	} else {
		for i := range got.Units {
			if got.Units[i].ID != want.Units[i].ID || got.Units[i].Seed != want.Units[i].Seed ||
				got.Units[i].ConfigHash != want.Units[i].ConfigHash {
				mismatch("unit "+want.Units[i].ID, "drifted spec", "sweep spec")
			}
		}
	}
	if len(fields) == 0 {
		return nil
	}
	return fmt.Errorf("%w: mismatched field(s): %s", ErrShardDrift, joinSemi(fields))
}

// mergeUnit loads and verifies one unit's journal against the manifest
// the sweep pins for it, then recomputes its accounting and analysis.
func mergeUnit(shardDir string, sw SweepManifest, shardIdx int, u Unit) (UnitReport, error) {
	ur := UnitReport{Unit: u, Shard: shardIdx}
	dir := UnitDir(shardDir, u.ID)
	want := campaign.Manifest{
		Version:          campaign.FormatVersion,
		Seed:             u.Seed,
		ConfigHash:       u.ConfigHash,
		FaultFingerprint: sw.FaultFingerprint,
		Sweep:            &campaign.SweepRef{SweepHash: sw.SweepHash, UnitID: u.ID, Shard: shardIdx},
	}
	recorded, st, _, err := campaign.LoadVerified(dir, want)
	switch {
	case err == nil:
	case isNoCampaign(err):
		return ur, nil // never started: a pure loss
	default:
		return ur, err // drift (named fields) or corrupt directory: refuse the merge
	}
	ur.Started = true
	ur.Torn = st.Torn
	if fp, err := campaign.HashJSON(recorded.Environment); err == nil {
		ur.EnvFingerprint = fp
	}
	rp := bench.ReplayEvents(st.Events(), 0)
	ur.samples = rp.Samples
	ur.N = len(rp.Samples)
	ur.Warmup, ur.Retries, ur.Losses, ur.Panics = rp.Warmup, rp.Retries, rp.Losses, rp.Panics
	if d, ok := loadUnitDone(dir); ok {
		ur.Completed = true
		ur.Stop = d.Stop
	}
	if len(ur.samples) >= 2 {
		if res, err := bench.Analyze(ur.samples, mergeConfidence); err == nil {
			ur.Analysis = res
			ur.Analyzed = true
		}
	}
	return ur, nil
}

func isNoCampaign(err error) bool {
	return errors.Is(err, campaign.ErrNoCampaign)
}

// account fills the loss accounting and campaign verdict: every unit
// without a completion sentinel is an explicit loss (Rule 4 — the
// failures are data), and any loss degrades the campaign.
func (r *MergeReport) account() {
	for i := range r.Units {
		u := &r.Units[i]
		if u.Completed {
			r.UnitsMeasured++
			continue
		}
		u.Lost = true
		r.UnitsLost++
		r.Findings = append(r.Findings, rules.Finding{
			Rule:     4,
			Severity: rules.Warning,
			Message: fmt.Sprintf("unit %s (shard %d) was lost: %d of its observations were journaled "+
				"before its shard was abandoned; the merged report carries the loss explicitly",
				u.Unit.ID, u.Shard, u.N),
		})
	}
	if r.UnitsLost > 0 {
		r.Stop = bench.StopDegraded
	}
}

// checkSeams runs the Rule 6 contamination check at every shard
// boundary. Units are concatenated in canonical order, each sample
// mapped to its absolute relative deviation |v/median(unit) − 1| — a
// dimensionless dispersion stream in which per-config scale cancels.
// The mapping matters: median-normalized values themselves are useless
// here, because normalization forces every unit to carry equal mass
// above and below 1, so a rank test across the seam cancels to zero no
// matter how contaminated one side is. In deviation space the
// signatures of shared-machine contamination (EXPERIMENTS.md) —
// intermittent interference spikes, heavy-tail growth, noise blowup,
// additive offsets — all become a location shift that Pettitt
// localizes at the seam. A perfectly uniform multiplicative slowdown
// is scale-free and stays invisible by construction: without
// cross-config priors it is indistinguishable from per-config scale,
// which is why the merged manifest also records per-shard env
// fingerprints (Rule 9) as the complementary defense.
func (r *MergeReport) checkSeams() {
	var stream []float64
	// start[i] = index in stream where shard i's samples start;
	// firstLen/lastLen give the widths of the units adjacent to each
	// seam, the localization resolution of the check (contamination is
	// unit-granular: an executor runs whole units).
	start := map[int]int{}
	firstLen := map[int]int{}
	lastLen := map[int]int{}
	last := -1
	for _, u := range r.Units {
		if u.Shard != last {
			start[u.Shard] = len(stream)
			firstLen[u.Shard] = len(u.samples)
			last = u.Shard
		}
		lastLen[u.Shard] = len(u.samples)
		if len(u.samples) == 0 {
			continue
		}
		med := median(u.samples)
		if med == 0 {
			med = 1
		}
		for _, v := range u.samples {
			d := v/med - 1
			if d < 0 {
				d = -d
			}
			stream = append(stream, d)
		}
	}
	for i := 0; i+1 < len(r.Shards); i++ {
		left, right := r.Shards[i].Index, r.Shards[i+1].Index
		b, ok := start[right]
		sc := SeamCheck{Left: left, Right: right, Boundary: b}
		lh, rh := r.hostKey(i), r.hostKey(i+1)
		sc.CrossHost = lh != rh && lh != "" && rh != ""
		win := lastLen[left]
		if firstLen[right] > win {
			win = firstLen[right]
		}
		if ok && b > 0 && b < len(stream) {
			if cp, drift, err := campaign.BoundaryShiftWin(stream, b, seamAlpha, win); err == nil {
				sc.Checked = true
				sc.P = cp.P
				sc.Drift = drift
				switch {
				case drift && sc.CrossHost:
					// Different machines legitimately differ; the shift is
					// stratified instead of alarmed — the merged per-unit
					// numbers stay valid (per-unit seeds and medians), but
					// any comparison pooling across this seam must block by
					// host stratum.
					r.Findings = append(r.Findings, rules.Finding{
						Rule:     9,
						Severity: rules.Pass,
						Message: fmt.Sprintf("shift at the merge seam between shard %d (host %s) and shard %d "+
							"(host %s) (sample %d, p ≈ %.3g): the shards ran on different hosts; stratifying by "+
							"host fingerprint — compare per-host strata rather than pooling across this seam",
							left, short(lh), right, short(rh), cp.Index, cp.P),
					})
				case drift:
					r.Findings = append(r.Findings, rules.Finding{
						Rule:     6,
						Severity: rules.Warning,
						Message: fmt.Sprintf("regime shift at the merge seam between shard %d and shard %d "+
							"(sample %d, p ≈ %.3g): the executors measured in drifted environments; "+
							"quarantine the shards instead of pooling them", left, right, cp.Index, cp.P),
					})
				}
			}
		}
		r.Seams = append(r.Seams, sc)
	}
}

// hostKey identifies the machine that measured shard position i (index
// into r.Shards): the host fingerprint when a remote worker recorded
// one, the executor env fingerprint otherwise. Empty means unknown.
func (r *MergeReport) hostKey(i int) string {
	if r.Shards[i].HostFingerprint != "" {
		return r.Shards[i].HostFingerprint
	}
	return r.Shards[i].EnvFingerprint
}

// buildStrata groups shards by host fingerprint and summarizes each
// stratum's deviation stream. Strata stay empty unless at least two
// distinct hosts measured the sweep — single-machine sweeps have
// nothing to stratify.
func (r *MergeReport) buildStrata() {
	keys := map[string]*HostStratum{}
	var order []string
	for i := range r.Shards {
		k := r.hostKey(i)
		if k == "" {
			continue
		}
		st, ok := keys[k]
		if !ok {
			st = &HostStratum{HostFingerprint: k, Host: r.Shards[i].Host}
			keys[k] = st
			order = append(order, k)
		}
		st.Shards = append(st.Shards, r.Shards[i].Index)
		st.Units += r.Shards[i].Units
	}
	if len(order) < 2 {
		return
	}
	devs := map[string][]float64{}
	for i := range r.Units {
		u := &r.Units[i]
		if len(u.samples) == 0 {
			continue
		}
		k := ""
		for j := range r.Shards {
			if r.Shards[j].Index == u.Shard {
				k = r.hostKey(j)
				break
			}
		}
		if k == "" {
			continue
		}
		med := median(u.samples)
		if med == 0 {
			med = 1
		}
		for _, v := range u.samples {
			d := v/med - 1
			if d < 0 {
				d = -d
			}
			devs[k] = append(devs[k], d)
		}
	}
	for _, k := range order {
		st := keys[k]
		st.Samples = len(devs[k])
		st.MedianDev = median(devs[k])
		r.Strata = append(r.Strata, *st)
	}
}

// median of xs (xs is not modified).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MergedManifest is the merged sweep record (merged.json): the sweep
// identity plus the per-shard Rule 9 environment fingerprints and the
// loss accounting — the provenance a merged report must ship with.
type MergedManifest struct {
	SweepHash        string           `json:"sweep_hash"`
	Name             string           `json:"name,omitempty"`
	FaultFingerprint string           `json:"fault_fingerprint"`
	Shards           []ShardReport    `json:"shards"`
	Seams            []SeamCheck      `json:"seams,omitempty"`
	Strata           []HostStratum    `json:"strata,omitempty"`
	UnitsMeasured    int              `json:"units_measured"`
	UnitsLost        int              `json:"units_lost"`
	Stop             bench.StopReason `json:"stop,omitempty"`
	MergedAt         time.Time        `json:"merged_at"`
}

// WriteMerged persists the merged manifest into the sweep directory.
func WriteMerged(sweepDir string, r *MergeReport) error {
	return writeJSON(filepath.Join(sweepDir, MergedFile), MergedManifest{
		SweepHash:        r.Sweep.SweepHash,
		Name:             r.Sweep.Name,
		FaultFingerprint: r.Sweep.FaultFingerprint,
		Shards:           r.Shards,
		Seams:            r.Seams,
		Strata:           r.Strata,
		UnitsMeasured:    r.UnitsMeasured,
		UnitsLost:        r.UnitsLost,
		Stop:             r.Stop,
		MergedAt:         time.Now().UTC(),
	})
}

// WriteReport writes the canonical merged report: a pure function of
// the sweep identity and the journal bytes, with nothing
// partition-dependent in it (no shard column, no attempt counts, no
// seam diagnostics) — so the bytes are identical whether the sweep ran
// in one process or across N crash-prone executors. Partition-dependent
// operations detail goes in WriteOps.
func (r *MergeReport) WriteReport(w io.Writer) error {
	ew := &errWriter{w: w}
	name := r.Sweep.Name
	if name == "" {
		name = "sweep"
	}
	ew.printf("%s: %d unit(s), sweep %s\n", name, len(r.Units), short(r.Sweep.SweepHash))
	ew.printf("| unit | n | median | %d%% CI (median) | stop |\n", int(mergeConfidence*100))
	ew.printf("|---|---|---|---|---|\n")
	for i := range r.Units {
		u := &r.Units[i]
		switch {
		case u.Lost:
			ew.printf("| %s | %d | — | — | LOST |\n", u.Unit.ID, u.N)
		case u.Analyzed:
			ew.printf("| %s | %d | %.6g | [%.6g, %.6g] | %s |\n", u.Unit.ID, u.N,
				u.Analysis.Summary.Median, u.Analysis.MedianCI.Lo, u.Analysis.MedianCI.Hi, u.Stop)
		default:
			ew.printf("| %s | %d | — | — | %s |\n", u.Unit.ID, u.N, u.Stop)
		}
	}
	var retries, losses, panics int
	for i := range r.Units {
		retries += r.Units[i].Retries
		losses += r.Units[i].Losses
		panics += r.Units[i].Panics
	}
	ew.printf("accounting: %d sample(s) lost, %d retried, %d panic(s) across %d unit(s)\n",
		losses, retries, panics, len(r.Units))
	if r.UnitsLost > 0 {
		ew.printf("verdict: DEGRADED (%s) — %d/%d unit(s) measured, %d LOST\n",
			bench.StopDegraded, r.UnitsMeasured, len(r.Units), r.UnitsLost)
	} else {
		ew.printf("verdict: COMPLETE — %d/%d unit(s) measured\n", r.UnitsMeasured, len(r.Units))
	}
	return ew.err
}

// WriteOps writes the distribution addendum: which shards ran where,
// under which environment fingerprints, with which attempt counts, and
// what the seam checks found. These facts are real — and deliberately
// excluded from the canonical report, because they depend on the
// partition and the failures, not the experiment.
func (r *MergeReport) WriteOps(w io.Writer) error {
	ew := &errWriter{w: w}
	ew.printf("distribution: %d shard(s)\n", len(r.Shards))
	ew.printf("| shard | units | completed | attempt | env fingerprint | host |\n")
	ew.printf("|---|---|---|---|---|---|\n")
	for _, s := range r.Shards {
		done := "yes"
		if !s.Completed {
			done = "NO (lost)"
		}
		host := s.Host
		if host == "" {
			host = "local"
		}
		ew.printf("| %d | %d | %s | %d | %s | %s |\n", s.Index, s.Units, done, s.Attempt,
			short(s.EnvFingerprint), host)
	}
	for _, sc := range r.Seams {
		switch {
		case !sc.Checked:
			ew.printf("seam %d|%d: not checked (too few samples)\n", sc.Left, sc.Right)
		case sc.Drift && sc.CrossHost:
			ew.printf("seam %d|%d: shift at sample %d (p ≈ %.3g) across a host boundary — stratified\n",
				sc.Left, sc.Right, sc.Boundary, sc.P)
		case sc.Drift:
			ew.printf("seam %d|%d: REGIME SHIFT at sample %d (p ≈ %.3g)\n", sc.Left, sc.Right, sc.Boundary, sc.P)
		default:
			ew.printf("seam %d|%d: no shift (p ≈ %.3g)\n", sc.Left, sc.Right, sc.P)
		}
	}
	if len(r.Strata) > 0 {
		ew.printf("host strata: %d\n", len(r.Strata))
		ew.printf("| host | fingerprint | shards | units | samples | median dev |\n")
		ew.printf("|---|---|---|---|---|---|\n")
		for _, st := range r.Strata {
			host := st.Host
			if host == "" {
				host = "?"
			}
			ew.printf("| %s | %s | %v | %d | %d | %.4g |\n", host, short(st.HostFingerprint),
				st.Shards, st.Units, st.Samples, st.MedianDev)
		}
	}
	for _, f := range r.Findings {
		ew.printf("[rule %d %s] %s\n", f.Rule, f.Severity, f.Message)
	}
	return ew.err
}

// errWriter latches the first write error so report writers read
// linearly.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func joinSemi(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += "; "
		}
		out += x
	}
	return out
}
