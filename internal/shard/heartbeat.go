package shard

import (
	"os"
	"path/filepath"
	"sync"
	"time"
)

// HeartbeatFile is the executor liveness file inside a shard directory.
const HeartbeatFile = "heartbeat.json"

// Heartbeat is one liveness record. Seq is a monotonic sequence number
// that keeps counting across executor attempts: a reassigned executor
// reads the last heartbeat and continues from its Seq, so the
// supervisor's only liveness signal is "Seq advanced", which is immune
// to wall-clock steps and to stale timestamps left by a killed process.
type Heartbeat struct {
	Seq     uint64 `json:"seq"`
	PID     int    `json:"pid"`
	Attempt int    `json:"attempt"`
	// Unit names the unit the executor is currently measuring
	// (informational, for operators reading the file).
	Unit string    `json:"unit,omitempty"`
	Time time.Time `json:"time"`
}

// ReadHeartbeat reads the shard's heartbeat file. ok is false when no
// executor has ever beaten (or the file is unreadable/corrupt — a torn
// heartbeat is indistinguishable from a missing one and treated the
// same: no liveness evidence).
func ReadHeartbeat(shardDir string) (hb Heartbeat, ok bool) {
	if err := readJSON(filepath.Join(shardDir, HeartbeatFile), &hb); err != nil {
		return Heartbeat{}, false
	}
	return hb, true
}

// WriteHeartbeat publishes a heartbeat into a shard directory with the
// same atomic temp+rename discipline the in-process beater uses. It is
// the mirroring half of remote supervision: a coordinator forwards a
// worker's heartbeat into its local mirror of the shard, and the
// supervisor's Seq-advance poll works across the wire unchanged.
func WriteHeartbeat(shardDir string, hb Heartbeat) error {
	return writeJSON(filepath.Join(shardDir, HeartbeatFile), hb)
}

// beater publishes heartbeats for one executor attempt. It resumes the
// sequence from any heartbeat left by a previous attempt and ticks on a
// fixed interval until Stop.
type beater struct {
	dir      string
	interval time.Duration

	mu   sync.Mutex
	hb   Heartbeat
	stop chan struct{}
	done chan struct{}
}

// startBeater begins heartbeating shardDir at the given interval,
// continuing the sequence across attempts. The first beat is written
// synchronously so the supervisor sees liveness before the first tick.
func startBeater(shardDir string, attempt int, interval time.Duration) *beater {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	b := &beater{
		dir:      shardDir,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	prev, _ := ReadHeartbeat(shardDir)
	b.hb = Heartbeat{Seq: prev.Seq, PID: os.Getpid(), Attempt: attempt}
	b.beat()
	go b.loop()
	return b
}

func (b *beater) loop() {
	defer close(b.done)
	t := time.NewTicker(b.interval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.beat()
		}
	}
}

// beat publishes the next heartbeat (atomic temp+rename, like every
// manifest write: a SIGKILL mid-beat leaves the previous heartbeat
// intact, never a torn file).
func (b *beater) beat() {
	b.mu.Lock()
	b.hb.Seq++
	b.hb.Time = time.Now().UTC()
	hb := b.hb
	b.mu.Unlock()
	// A failed write is not fatal to the measurement: the executor keeps
	// running and the supervisor will kill it only if beats stay absent
	// past the timeout — which is the correct reaction to a shard
	// directory that stopped accepting writes.
	_ = writeJSON(filepath.Join(b.dir, HeartbeatFile), hb)
}

// setUnit labels subsequent heartbeats with the unit in progress.
func (b *beater) setUnit(id string) {
	b.mu.Lock()
	b.hb.Unit = id
	b.mu.Unlock()
}

// Stop ends the heartbeat loop (the file is left in place; Seq resumes
// from it on the next attempt).
func (b *beater) Stop() {
	close(b.stop)
	<-b.done
}
