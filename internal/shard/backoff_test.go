package shard

import (
	"testing"
	"time"
)

// TestReassignBackoffSeeded: reassignment jitter is a pure function of
// (seed, shard, attempt) — the same campaign seed replays the same
// supervision schedule, different seeds decorrelate.
func TestReassignBackoffSeeded(t *testing.T) {
	opt := Options{Backoff: 100 * time.Millisecond, Seed: 42}
	a := ReassignBackoff(opt, 3, 2)
	if b := ReassignBackoff(opt, 3, 2); b != a {
		t.Fatalf("same inputs, different backoff: %s vs %s", a, b)
	}
	if a < 100*time.Millisecond || a >= 150*time.Millisecond {
		t.Errorf("attempt-2 backoff %s outside [base, 1.5·base)", a)
	}
	if c := ReassignBackoff(opt, 3, 3); c < 200*time.Millisecond || c >= 300*time.Millisecond {
		t.Errorf("attempt-3 backoff %s did not double the base before jitter", c)
	}
	other := opt
	other.Seed = 43
	diff := false
	for shard := 0; shard < 8 && !diff; shard++ {
		diff = ReassignBackoff(opt, shard, 2) != ReassignBackoff(other, shard, 2)
	}
	if !diff {
		t.Error("eight shards, two seeds, identical jitter everywhere — backoff is not seeded")
	}
}
