package shard

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/campaign"
)

// TestMain doubles as the executor entry point for the multi-process
// tests: when SHARD_EXEC_DIR is set, the test binary re-execs as a real
// shard executor (optionally crashing itself with SIGKILL mid-unit or
// hanging without heartbeats) instead of running the test suite.
func TestMain(m *testing.M) {
	if dir := os.Getenv("SHARD_EXEC_DIR"); dir != "" {
		procExecMain(dir)
		return
	}
	os.Exit(m.Run())
}

// crashMarker is the sentinel an executor writes just before injecting
// its crash, so the fault fires exactly once per shard: the reassigned
// attempt sees the marker and runs clean.
func crashMarker(dir string) string { return filepath.Join(dir, "crash.marker") }

func procExecMain(dir string) {
	attempt, _ := strconv.Atoi(os.Getenv("SHARD_ATTEMPT"))
	if os.Getenv("SHARD_HANG") == "1" {
		if _, err := os.Stat(crashMarker(dir)); os.IsNotExist(err) {
			// A genuinely wedged executor: no heartbeat ever, no exit.
			// The supervisor must stall-kill this process.
			_ = os.WriteFile(crashMarker(dir), []byte("hang"), 0o644)
			select {}
		}
	}
	var r UnitRunner = testRunner{}
	if s := os.Getenv("SHARD_KILL_AT"); s != "" {
		if _, err := os.Stat(crashMarker(dir)); os.IsNotExist(err) {
			at, _ := strconv.Atoi(s)
			r = &killRunner{inner: r, at: at, marker: crashMarker(dir)}
		}
	}
	_, err := ExecShard(context.Background(), dir, r, ExecOptions{
		Attempt:   attempt,
		Heartbeat: 20 * time.Millisecond,
		Progress:  os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "executor:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// killRunner SIGKILLs its own process (no cleanup, no deferred
// truncation — the hardest crash there is) immediately before measure
// call `at`, counted across the whole shard.
type killRunner struct {
	inner  UnitRunner
	at     int
	marker string
	calls  int
}

func (k *killRunner) Setup(u Unit) (campaign.Manifest, bench.Plan, func() (float64, error), error) {
	man, plan, measure, err := k.inner.Setup(u)
	if err != nil {
		return man, plan, measure, err
	}
	wrapped := func() (float64, error) {
		k.calls++
		if k.calls == k.at {
			_ = os.WriteFile(k.marker, []byte("killed"), 0o644)
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
		return measure()
	}
	return man, plan, wrapped, nil
}

// procStart builds a StartFunc that re-execs this test binary as a
// real executor process, with extra per-shard environment (keyed by
// shard directory basename) for fault injection.
func procStart(t *testing.T, extra map[string][]string) StartFunc {
	t.Helper()
	return func(shardDir string, attempt int) (Handle, error) {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"SHARD_EXEC_DIR="+shardDir,
			fmt.Sprintf("SHARD_ATTEMPT=%d", attempt))
		cmd.Env = append(cmd.Env, extra[filepath.Base(shardDir)]...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return procHandle{cmd}, nil
	}
}

// TestProcessSIGKILLResumeByteIdentity is the acceptance scenario: 3
// executor processes, one SIGKILLed mid-shard (mid-unit, mid-journal),
// its shard reassigned and resumed from the journal — and the merged
// report is byte-identical to the single-process run.
func TestProcessSIGKILLResumeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	const units = 8
	ref := func() []byte {
		dir := t.TempDir()
		sw := buildSweep(t, dir, units, 1)
		return execAll(t, dir, sw)
	}()

	dir := t.TempDir()
	buildSweep(t, dir, units, 3)
	// Shard 1 holds units 2-4 (42 measure calls); kill at call 20 —
	// inside its second unit, after some samples are journaled.
	start := procStart(t, map[string][]string{
		ShardDirName(1): {"SHARD_KILL_AT=20"},
	})
	statuses, err := Supervise(context.Background(), dir, start, Options{
		HeartbeatTimeout: 5 * time.Second,
		Poll:             20 * time.Millisecond,
		Retries:          2,
		Backoff:          10 * time.Millisecond,
		Log:              os.Stderr,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range statuses {
		if st.Lost {
			t.Fatalf("shard %d lost: %+v", st.Shard, st)
		}
	}
	if statuses[1].Attempts != 2 || statuses[1].Crashes != 1 {
		t.Fatalf("SIGKILLed shard should have crashed once and been reassigned: %+v", statuses[1])
	}
	// The injected crash must have left a mid-unit journal (otherwise
	// this test would not exercise resume).
	if _, err := os.Stat(crashMarker(filepath.Join(dir, ShardDirName(1)))); err != nil {
		t.Fatalf("crash never fired: %v", err)
	}
	got := mergedReport(t, dir)
	if !bytes.Equal(got, ref) {
		t.Errorf("merged report after SIGKILL + reassignment differs from single-process run:\n--- ref\n%s\n--- got\n%s", ref, got)
	}
}

// TestProcessStallDetectedAndReassigned: an executor that wedges before
// its first heartbeat is stall-killed by the supervisor and its shard
// reassigned; the merged report is still byte-identical.
func TestProcessStallDetectedAndReassigned(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	const units = 4
	ref := func() []byte {
		dir := t.TempDir()
		sw := buildSweep(t, dir, units, 1)
		return execAll(t, dir, sw)
	}()

	dir := t.TempDir()
	buildSweep(t, dir, units, 2)
	start := procStart(t, map[string][]string{
		ShardDirName(0): {"SHARD_HANG=1"},
	})
	statuses, err := Supervise(context.Background(), dir, start, Options{
		HeartbeatTimeout: 500 * time.Millisecond,
		Poll:             20 * time.Millisecond,
		Retries:          2,
		Backoff:          10 * time.Millisecond,
		Log:              os.Stderr,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range statuses {
		if st.Lost {
			t.Fatalf("shard %d lost: %+v", st.Shard, st)
		}
	}
	if statuses[0].Stalls != 1 || statuses[0].Attempts != 2 {
		t.Fatalf("hung executor should have been stall-killed once: %+v", statuses[0])
	}
	got := mergedReport(t, dir)
	if !bytes.Equal(got, ref) {
		t.Errorf("merged report after stall + reassignment differs from single-process run:\n--- ref\n%s\n--- got\n%s", ref, got)
	}
}
