package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/telemetry"
)

// Telemetry: executor-side shard accounting. Counters only — nothing
// here may change a journal or report byte.
var (
	telUnitsRun     = telemetry.Default().Counter("shard.units_run")
	telUnitsResumed = telemetry.Default().Counter("shard.units_resumed")
	telUnitsSkipped = telemetry.Default().Counter("shard.units_skipped")
)

// UnitRunner rebuilds the measurement for one unit from its opaque
// config: the campaign manifest (without sweep membership — the
// executor injects that), the collection plan, and the deterministic
// measure function positioned at the unit's seed. The same runner must
// produce the same (manifest, plan, measure) for the same unit on every
// executor, or resume-after-reassignment will correctly refuse with
// manifest drift.
type UnitRunner interface {
	Setup(u Unit) (campaign.Manifest, bench.Plan, func() (float64, error), error)
}

// ExecOptions tunes one executor attempt.
type ExecOptions struct {
	// Attempt is the supervisor-assigned attempt number, recorded in
	// heartbeats (informational; the liveness signal is Seq alone).
	Attempt int
	// Heartbeat is the liveness interval (default 250ms). The
	// supervisor's timeout must be a comfortable multiple of it.
	Heartbeat time.Duration
	// Progress, when non-nil, receives one line per unit (skipped /
	// resumed / measured) — operator output, never report bytes.
	Progress io.Writer
}

// UnitDone is the per-unit completion sentinel (result.json): it marks
// the unit's campaign as complete — a reassigned executor skips units
// that carry it — and summarizes the accounting for quick inspection.
// The merge recomputes everything from the journal and only trusts this
// file as a completion marker.
type UnitDone struct {
	ID      string           `json:"id"`
	Stop    bench.StopReason `json:"stop"`
	N       int              `json:"n"`
	Warmup  int              `json:"warmup_discarded"`
	Retries int              `json:"retries"`
	Losses  int              `json:"samples_lost"`
	Panics  int              `json:"panics"`
}

// ShardDone is the shard completion sentinel (done.json). The
// supervisor reads it to distinguish "executor exited after finishing"
// from "executor died mid-shard".
type ShardDone struct {
	Shard       int       `json:"shard"`
	SweepHash   string    `json:"sweep_hash"`
	Attempt     int       `json:"attempt"`
	Units       []string  `json:"units"`
	CompletedAt time.Time `json:"completed_at"`
}

// LoadDone reads a shard's completion sentinel; ok is false when the
// shard has not completed.
func LoadDone(shardDir string) (ShardDone, bool) {
	var d ShardDone
	if err := readJSON(filepath.Join(shardDir, DoneFile), &d); err != nil {
		return ShardDone{}, false
	}
	return d, true
}

// loadUnitDone reads a unit's completion sentinel.
func loadUnitDone(unitDir string) (UnitDone, bool) {
	var d UnitDone
	if err := readJSON(filepath.Join(unitDir, UnitResultFile), &d); err != nil {
		return UnitDone{}, false
	}
	return d, true
}

// ExecShard runs one shard to completion: every unit in manifest order,
// as an independent journaled campaign under units/<id>/. Units already
// carrying a completion sentinel are skipped; units with a partial
// journal (a previous executor died mid-unit) are resumed bit-for-bit
// via campaign.Resume — completed observations are never re-measured.
// A heartbeat goroutine publishes liveness for the supervisor the whole
// time. On success the shard's done.json is written and returned.
func ExecShard(ctx context.Context, shardDir string, r UnitRunner, opt ExecOptions) (ShardDone, error) {
	ctx, span := telemetry.StartSpan(ctx, "shard", filepath.Base(shardDir))
	defer span.End()
	m, err := LoadManifest(shardDir)
	if err != nil {
		return ShardDone{}, err
	}
	if opt.Attempt < 1 {
		opt.Attempt = 1
	}
	b := startBeater(shardDir, opt.Attempt, opt.Heartbeat)
	defer b.Stop()

	done := ShardDone{Shard: m.Index, SweepHash: m.SweepHash, Attempt: opt.Attempt}
	for _, u := range m.Units {
		if err := ctx.Err(); err != nil {
			return ShardDone{}, fmt.Errorf("shard: executor interrupted before unit %s: %w", u.ID, err)
		}
		b.setUnit(u.ID)
		if err := execUnit(ctx, shardDir, m, u, r, opt); err != nil {
			return ShardDone{}, err
		}
		done.Units = append(done.Units, u.ID)
	}
	b.setUnit("")
	done.CompletedAt = time.Now().UTC()
	if err := writeJSON(filepath.Join(shardDir, DoneFile), done); err != nil {
		return ShardDone{}, err
	}
	return done, nil
}

// execUnit runs (or skips, or resumes) one unit campaign.
func execUnit(ctx context.Context, shardDir string, m Manifest, u Unit, r UnitRunner, opt ExecOptions) error {
	dir := UnitDir(shardDir, u.ID)
	if _, ok := loadUnitDone(dir); ok {
		telUnitsSkipped.Inc()
		progress(opt, "unit %s: already complete, skipped\n", u.ID)
		return nil
	}
	man, plan, measure, err := r.Setup(u)
	if err != nil {
		return fmt.Errorf("shard: setting up unit %s: %w", u.ID, err)
	}
	// The runner's manifest must describe exactly the unit the sweep
	// pinned; a mismatch means the executor's configuration drifted from
	// the sweep and running it would journal a different experiment.
	if man.Seed != u.Seed || man.ConfigHash != u.ConfigHash || man.FaultFingerprint != m.FaultFingerprint {
		return fmt.Errorf("%w: unit %s: runner setup disagrees with sweep "+
			"(seed %d/%d, config %s/%s, faults %s/%s)", ErrShardDrift, u.ID,
			man.Seed, u.Seed, short(man.ConfigHash), short(u.ConfigHash),
			short(man.FaultFingerprint), short(m.FaultFingerprint))
	}
	man.Sweep = &campaign.SweepRef{SweepHash: m.SweepHash, UnitID: u.ID, Shard: m.Index}

	// The unit journal format comes from the shard manifest, so every
	// executor attempt — including a replacement on another machine —
	// journals the format the sweep chose. Resume sniffs the existing
	// journal regardless, so a sweep whose format setting changed
	// between attempts still extends what is on disk.
	format, err := campaign.ParseFormat(m.Journal)
	if err != nil {
		return fmt.Errorf("shard: unit %s: %w", u.ID, err)
	}
	jopt := campaign.JournalOptions{Format: format}

	var res bench.Result
	switch _, _, lerr := campaign.Load(dir); {
	case lerr == nil:
		// A previous executor died mid-unit: resume from its journal.
		telUnitsResumed.Inc()
		var info campaign.ResumeInfo
		res, info, err = campaign.Resume(ctx, dir, man, plan, measure, campaign.ResumeOptions{Journal: jopt})
		if err != nil {
			return fmt.Errorf("shard: resuming unit %s: %w", u.ID, err)
		}
		progress(opt, "unit %s: resumed (%d prior samples, %d replayed) → n=%d\n",
			u.ID, info.PriorSamples, info.FastForwarded, len(res.Raw))
	case errors.Is(lerr, campaign.ErrNoCampaign):
		telUnitsRun.Inc()
		res, err = campaign.RunOpts(ctx, dir, man, plan, measure, jopt)
		if err != nil {
			return fmt.Errorf("shard: running unit %s: %w", u.ID, err)
		}
		progress(opt, "unit %s: measured, n=%d (%s)\n", u.ID, len(res.Raw), res.Stop)
	default:
		return fmt.Errorf("shard: inspecting unit %s: %w", u.ID, lerr)
	}
	if res.Stop == bench.StopInterrupted {
		// Checkpointed cleanly but incomplete: no sentinel, so the next
		// attempt resumes where this one stopped.
		return fmt.Errorf("shard: unit %s interrupted after %d samples", u.ID, len(res.Raw))
	}
	return writeJSON(filepath.Join(dir, UnitResultFile), UnitDone{
		ID:      u.ID,
		Stop:    res.Stop,
		N:       len(res.Raw),
		Warmup:  res.WarmupDiscarded,
		Retries: res.Retries,
		Losses:  res.SamplesLost,
		Panics:  res.Panics,
	})
}

func progress(opt ExecOptions, format string, args ...any) {
	if opt.Progress != nil {
		fmt.Fprintf(opt.Progress, format, args...)
	}
}
