//go:build !unix

package shard

import (
	"os"
	"os/exec"
)

// setProcGroup is a no-op where process groups are unavailable.
func setProcGroup(*exec.Cmd) {}

// killProc kills the executor process itself; descendants are the
// platform's problem.
func killProc(p *os.Process) error {
	if p == nil {
		return nil
	}
	return p.Kill()
}
