package shard

import (
	"context"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/telemetry"

	"repro/internal/rng"
)

// Telemetry: supervisor-side fault accounting.
var (
	telStarts  = telemetry.Default().Counter("shard.executors_started")
	telStalls  = telemetry.Default().Counter("shard.stalls")
	telRetries = telemetry.Default().Counter("shard.reassignments")
	telLost    = telemetry.Default().Counter("shard.lost")
)

// Handle is a running executor as the supervisor sees it: something it
// can wait on and kill. Process executors wrap *exec.Cmd; tests may
// supply in-process fakes.
type Handle interface {
	Wait() error
	Kill() error
}

// StartFunc launches one executor attempt on a shard directory.
type StartFunc func(shardDir string, attempt int) (Handle, error)

// Options tunes the supervisor.
type Options struct {
	// HeartbeatTimeout is how long a shard's heartbeat Seq may stay
	// unchanged before the executor is declared stalled and killed.
	// Default 5s; it must comfortably exceed the executor's beat
	// interval plus its longest single observation.
	HeartbeatTimeout time.Duration
	// Poll is the heartbeat check interval (default HeartbeatTimeout/5,
	// floor 10ms).
	Poll time.Duration
	// Retries is the reassignment budget per shard beyond the first
	// attempt (default 2; negative means no retries). A shard that
	// exhausts it is reported lost —
	// explicitly, in its ShardStatus and in the merged report's loss
	// accounting — never silently dropped.
	Retries int
	// Backoff is the delay before the first reassignment, doubling per
	// subsequent one (default 100ms) — the same doubling schedule the
	// resilient collection loop uses for sample retries.
	Backoff time.Duration
	// Seed derives the reassignment jitter deterministically (campaign
	// seed by convention). Jitter spreads concurrent reassignments in
	// [1, 1.5)× the exponential base so shards that stall together do
	// not restart together, and because it is seeded, a test replays
	// the exact reassignment schedule instead of sampling the clock.
	Seed uint64
	// Log, when non-nil, receives one line per supervision event
	// (start, stall, reassignment, loss).
	Log io.Writer
}

// ReassignBackoff is the delay before reassignment attempt (attempt ≥ 2)
// of one shard: Backoff doubled per prior reassignment, plus a jitter
// fraction in [0, 0.5) of that base derived from (Seed, shard, attempt)
// via the splitmix64 finalizer. Same inputs, same schedule — the
// supervisor's retry timing is part of the experiment, so it is seeded
// like everything else.
func ReassignBackoff(opt Options, shardIdx, attempt int) time.Duration {
	opt = opt.withDefaults()
	base := opt.Backoff << (attempt - 2)
	h := rng.Mix64(opt.Seed ^ uint64(shardIdx)*0x9e3779b97f4a7c15 ^ uint64(attempt))
	frac := float64(h>>11) / (1 << 53)
	return base + time.Duration(frac*float64(base)/2)
}

func (o Options) withDefaults() Options {
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 5 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = o.HeartbeatTimeout / 5
	}
	if o.Poll < 10*time.Millisecond {
		o.Poll = 10 * time.Millisecond
	}
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	return o
}

// ShardStatus is the supervision outcome of one shard.
type ShardStatus struct {
	Shard    int
	Attempts int    // executor attempts launched
	Stalls   int    // heartbeat-timeout kills
	Crashes  int    // executor exits without a completion sentinel
	Lost     bool   // retry budget exhausted; the shard's incomplete units are losses
	Err      string // last failure, "" on success
}

// Supervise runs every shard of the sweep under fault supervision: one
// executor per shard via start, liveness via the shard's heartbeat
// file, stalled or dead executors killed and reassigned with
// exponential backoff under a retry budget. It returns one ShardStatus
// per shard; exhausted shards come back Lost rather than failing the
// sweep — graceful degradation is the merge's job to account, not the
// supervisor's to hide. The returned error is reserved for setup
// failures (no sweep in dir) and context cancellation.
func Supervise(ctx context.Context, sweepDir string, start StartFunc, opt Options) ([]ShardStatus, error) {
	sw, err := LoadSweep(sweepDir)
	if err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	n := len(Partition(len(sw.Units), sw.NumShards))
	statuses := make([]ShardStatus, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, span := telemetry.StartSpan(ctx, "shard", fmt.Sprintf("supervise shard %d", i))
			defer span.End()
			statuses[i] = superviseShard(ctx, filepath.Join(sweepDir, ShardDirName(i)), i, start, opt)
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return statuses, fmt.Errorf("shard: supervision cancelled: %w", err)
	}
	return statuses, nil
}

// superviseShard drives one shard through its attempts.
func superviseShard(ctx context.Context, dir string, idx int, start StartFunc, opt Options) ShardStatus {
	st := ShardStatus{Shard: idx}
	for attempt := 1; attempt <= 1+opt.Retries; attempt++ {
		// A completed shard needs no executor — covers both re-running a
		// half-finished sweep and the race where a "stalled" executor
		// finished just as it was killed.
		if _, ok := LoadDone(dir); ok {
			st.Err = ""
			return st
		}
		if attempt > 1 {
			telRetries.Inc()
			backoff := ReassignBackoff(opt, idx, attempt)
			logf(opt, "shard %d: reassigning (attempt %d/%d) after %s backoff: %s\n",
				idx, attempt, 1+opt.Retries, backoff, st.Err)
			select {
			case <-ctx.Done():
				st.Err = "supervision cancelled"
				return st
			case <-time.After(backoff):
			}
		}
		st.Attempts++
		telStarts.Inc()
		stalled, err := runAttempt(ctx, dir, attempt, start, opt)
		if _, ok := LoadDone(dir); ok {
			st.Err = ""
			return st
		}
		if ctx.Err() != nil {
			st.Err = "supervision cancelled"
			return st
		}
		if stalled {
			st.Stalls++
			telStalls.Inc()
			st.Err = fmt.Sprintf("executor stalled (no heartbeat for %s), killed", opt.HeartbeatTimeout)
		} else {
			st.Crashes++
			if err != nil {
				st.Err = fmt.Sprintf("executor died mid-shard: %v", err)
			} else {
				st.Err = "executor exited without completing its shard"
			}
		}
	}
	st.Lost = true
	telLost.Inc()
	logf(opt, "shard %d: LOST after %d attempt(s) (%s); its incomplete units will be "+
		"reported as losses\n", idx, st.Attempts, st.Err)
	return st
}

// runAttempt launches one executor and watches it until exit, killing
// it if its heartbeat Seq stops advancing for longer than the timeout.
// It reports whether the attempt ended in a stall kill, plus the
// executor's exit error.
func runAttempt(ctx context.Context, dir string, attempt int, start StartFunc, opt Options) (stalled bool, err error) {
	h, err := start(dir, attempt)
	if err != nil {
		return false, fmt.Errorf("starting executor: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- h.Wait() }()

	// Liveness is "Seq advanced", nothing else: wall-clock steps and the
	// stale Time a killed process left behind cannot fake it.
	var lastSeq uint64
	if hb, ok := ReadHeartbeat(dir); ok {
		lastSeq = hb.Seq
	}
	lastAdvance := time.Now()
	tick := time.NewTicker(opt.Poll)
	defer tick.Stop()
	for {
		select {
		case err := <-exited:
			return false, err
		case <-ctx.Done():
			_ = h.Kill()
			<-exited
			return false, ctx.Err()
		case <-tick.C:
			if hb, ok := ReadHeartbeat(dir); ok && hb.Seq != lastSeq {
				lastSeq = hb.Seq
				lastAdvance = time.Now()
				continue
			}
			if time.Since(lastAdvance) > opt.HeartbeatTimeout {
				logf(opt, "shard %s: heartbeat stalled at seq %d, killing executor\n",
					filepath.Base(dir), lastSeq)
				_ = h.Kill()
				<-exited
				return true, nil
			}
		}
	}
}

// Command builds a StartFunc that forks argv with "-attempt=N" and the
// shard directory appended — the single-machine executor launcher
// behind `scibench campaign -shards N` (argv = self, "exec"). The
// attempt flag carries reassignment provenance into the executor's
// heartbeat file. On unix the executor is started in its own process
// group and Kill takes down the whole group: an executor that forked
// measurement children must not leave them running (and beating) after
// the supervisor declares it dead, or a "killed" shard would keep
// mutating its journal.
func Command(stdout, stderr io.Writer, argv ...string) StartFunc {
	return func(shardDir string, attempt int) (Handle, error) {
		args := append(append([]string{}, argv[1:]...), fmt.Sprintf("-attempt=%d", attempt), shardDir)
		cmd := exec.Command(argv[0], args...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		setProcGroup(cmd)
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return procHandle{cmd}, nil
	}
}

type procHandle struct{ cmd *exec.Cmd }

func (h procHandle) Wait() error { return h.cmd.Wait() }
func (h procHandle) Kill() error { return killProc(h.cmd.Process) }

func logf(opt Options, format string, args ...any) {
	if opt.Log != nil {
		fmt.Fprintf(opt.Log, format, args...)
	}
}
