//go:build unix

package shard

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCommandKillsProcessGroup: a shard executor that forks children
// must not leave them running when the supervisor kills the attempt.
// Command puts each attempt in its own process group and kills the
// group, so the grandchild dies with its parent.
func TestCommandKillsProcessGroup(t *testing.T) {
	dir := t.TempDir()
	pidFile := filepath.Join(dir, "grandchild.pid")
	// The executor forks a long sleep, records its PID, and then hangs —
	// the exact shape of a benchmark harness holding a measured child
	// when the coordinator loses patience.
	script := fmt.Sprintf("sleep 300 & echo $! > %s; wait", pidFile)
	start := Command(io.Discard, io.Discard, "sh", "-c", script, "--")

	h, err := start(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	var pid int
	deadline := time.Now().Add(10 * time.Second)
	for {
		if raw, err := os.ReadFile(pidFile); err == nil {
			if pid, err = strconv.Atoi(strings.TrimSpace(string(raw))); err == nil && pid > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("executor never forked its grandchild")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := h.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// The grandchild must be gone — not merely orphaned to init and
	// still holding the benchmark's resources.
	deadline = time.Now().Add(10 * time.Second)
	for {
		err := syscall.Kill(pid, 0)
		if err == syscall.ESRCH {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("grandchild %d still alive after group kill (signal probe: %v)", pid, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
