package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/rules"
)

// testEnv is the Rule 9 environment block the in-process tests record.
var testEnv = rules.Environment{
	Processor:        "simulated 64-rank cluster",
	Memory:           "simulated",
	Network:          "simulated fat-tree",
	Compiler:         "go (test)",
	InputAndCode:     "internal/shard tests",
	MeasurementSetup: "deterministic seeded measure source",
}

// unitCfg is the opaque per-unit config the test runner understands.
type unitCfg struct {
	Name string  `json:"name"`
	Base float64 `json:"base"`
}

// testFaultFP is the fingerprint of a nil fault schedule — what
// campaign.NewManifest records when no faults are injected.
func testFaultFP(t testing.TB) string {
	t.Helper()
	fp, err := campaign.HashJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// makeUnits builds k sweep units with seeds from the canonical
// per-config seed table (seed++ in canonical order, like
// suite.enumerate) and config hashes over their full configs.
func makeUnits(t testing.TB, k int, baseSeed uint64) []Unit {
	t.Helper()
	units := make([]Unit, k)
	for i := range units {
		cfg := unitCfg{Name: fmt.Sprintf("cfg-%02d", i), Base: 100 + 10*float64(i)}
		raw, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := campaign.HashJSON(cfg)
		if err != nil {
			t.Fatal(err)
		}
		units[i] = Unit{
			ID:         fmt.Sprintf("u%02d-%s", i, cfg.Name),
			Seed:       baseSeed + uint64(i),
			ConfigHash: ch,
			Config:     raw,
		}
	}
	return units
}

// testRunner rebuilds a deterministic measurement from a unit config: a
// seeded PRNG around the config's base latency. The same unit always
// yields the same sample stream, on any executor.
type testRunner struct{}

func (testRunner) Setup(u Unit) (campaign.Manifest, bench.Plan, func() (float64, error), error) {
	var cfg unitCfg
	if err := json.Unmarshal(u.Config, &cfg); err != nil {
		return campaign.Manifest{}, bench.Plan{}, nil, err
	}
	man, err := campaign.NewManifest(u.ID, u.Seed, cfg, nil, testEnv)
	if err != nil {
		return campaign.Manifest{}, bench.Plan{}, nil, err
	}
	rng := rand.New(rand.NewSource(int64(u.Seed)))
	measure := func() (float64, error) {
		return cfg.Base * (1 + 0.05*rng.Float64()), nil
	}
	plan := bench.Plan{Warmup: 2, MinSamples: 12, Workers: 1}
	return man, plan, measure, nil
}

// buildSweep creates a sweep directory with k units over n shards.
func buildSweep(t testing.TB, dir string, k, n int) SweepManifest {
	t.Helper()
	sw, err := NewSweep("test-sweep", makeUnits(t, k, 42), testFaultFP(t), testEnv, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := Create(dir, sw); err != nil {
		t.Fatal(err)
	}
	return sw
}

// execAll runs every shard in-process and returns the canonical report.
func execAll(t *testing.T, dir string, sw SweepManifest) []byte {
	t.Helper()
	for i := range sw.Shards() {
		sd := filepath.Join(dir, ShardDirName(i))
		if _, err := ExecShard(context.Background(), sd, testRunner{}, ExecOptions{}); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	return mergedReport(t, dir)
}

func mergedReport(t *testing.T, dir string) []byte {
	t.Helper()
	rep, err := Merge(dir)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPartitionCoversCanonicalOrder(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{1, 1}, {7, 1}, {7, 2}, {7, 3}, {8, 4}, {8, 8}, {5, 9},
	} {
		ranges := Partition(tc.n, tc.shards)
		next := 0
		for _, r := range ranges {
			if r[0] != next {
				t.Fatalf("Partition(%d,%d): gap or overlap at %d (ranges %v)", tc.n, tc.shards, next, ranges)
			}
			if r[1] < r[0] {
				t.Fatalf("Partition(%d,%d): negative range %v", tc.n, tc.shards, r)
			}
			next = r[1]
		}
		if next != tc.n {
			t.Fatalf("Partition(%d,%d) covers %d of %d units", tc.n, tc.shards, next, tc.n)
		}
	}
}

func TestNewSweepValidation(t *testing.T) {
	units := makeUnits(t, 3, 1)
	if _, err := NewSweep("s", nil, "fp", testEnv, 1); !errors.Is(err, ErrBadSweep) {
		t.Fatalf("empty units: got %v", err)
	}
	if _, err := NewSweep("s", units, "fp", testEnv, 4); !errors.Is(err, ErrBadSweep) {
		t.Fatalf("more shards than units: got %v", err)
	}
	bad := append([]Unit(nil), units...)
	bad[1].ID = "../escape"
	if _, err := NewSweep("s", bad, "fp", testEnv, 1); !errors.Is(err, ErrBadSweep) {
		t.Fatalf("unsafe ID: got %v", err)
	}
	dup := append([]Unit(nil), units...)
	dup[1].ID = dup[0].ID
	if _, err := NewSweep("s", dup, "fp", testEnv, 1); !errors.Is(err, ErrBadSweep) {
		t.Fatalf("duplicate ID: got %v", err)
	}
}

func TestSweepHashIgnoresPartition(t *testing.T) {
	units := makeUnits(t, 4, 7)
	a, err := NewSweep("s", units, "fp", testEnv, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSweep("s", units, "fp", testEnv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.SweepHash != b.SweepHash {
		t.Fatal("repartitioning the same sweep changed its identity hash")
	}
}

func TestLoadSweepRefusesTamper(t *testing.T) {
	dir := t.TempDir()
	sw := buildSweep(t, dir, 3, 2)
	// Tamper: change one unit's seed in sweep.json without rehashing.
	sw.Units[1].Seed++
	if err := writeJSON(filepath.Join(dir, SweepFile), sw); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSweep(dir); !errors.Is(err, ErrShardDrift) {
		t.Fatalf("tampered sweep: got %v", err)
	}
}

func TestCreateRefusesExistingSweep(t *testing.T) {
	dir := t.TempDir()
	sw := buildSweep(t, dir, 2, 1)
	if err := Create(dir, sw); !errors.Is(err, ErrSweepExists) {
		t.Fatalf("second create: got %v", err)
	}
}

func TestHeartbeatSeqContinuesAcrossAttempts(t *testing.T) {
	dir := t.TempDir()
	b1 := startBeater(dir, 1, time.Hour) // one synchronous beat, then idle
	b1.Stop()
	hb1, ok := ReadHeartbeat(dir)
	if !ok || hb1.Seq == 0 {
		t.Fatalf("no heartbeat after first attempt: %+v ok=%v", hb1, ok)
	}
	b2 := startBeater(dir, 2, time.Hour)
	b2.Stop()
	hb2, ok := ReadHeartbeat(dir)
	if !ok || hb2.Seq <= hb1.Seq {
		t.Fatalf("heartbeat seq not monotonic across attempts: %d then %d", hb1.Seq, hb2.Seq)
	}
	if hb2.Attempt != 2 {
		t.Fatalf("attempt not recorded: %+v", hb2)
	}
}

// TestMergeByteIdentity is the core determinism guarantee: the
// canonical merged report is byte-identical whether the sweep ran in
// one process or was partitioned across 2 or 4 executors.
func TestMergeByteIdentity(t *testing.T) {
	const units = 8
	ref := func() []byte {
		dir := t.TempDir()
		sw := buildSweep(t, dir, units, 1)
		return execAll(t, dir, sw)
	}()
	if !bytes.Contains(ref, []byte("verdict: COMPLETE")) {
		t.Fatalf("reference report not complete:\n%s", ref)
	}
	for _, n := range []int{2, 4} {
		dir := t.TempDir()
		sw := buildSweep(t, dir, units, n)
		got := execAll(t, dir, sw)
		if !bytes.Equal(got, ref) {
			t.Errorf("merged report for %d shard(s) differs from single-process run:\n--- n=1\n%s\n--- n=%d\n%s", n, ref, n, got)
		}
	}
}

// TestExecShardSkipsCompletedUnits: a reassigned executor must never
// re-measure a completed unit.
func TestExecShardSkipsCompletedUnits(t *testing.T) {
	dir := t.TempDir()
	sw := buildSweep(t, dir, 3, 1)
	sd := filepath.Join(dir, ShardDirName(0))
	if _, err := ExecShard(context.Background(), sd, testRunner{}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	ref := mergedReport(t, dir)
	// Remove the done sentinel and re-exec: every unit already carries
	// its result.json, so the second pass must skip them all — leaving
	// journals, and therefore the merged report, untouched.
	if err := os.Remove(filepath.Join(sd, DoneFile)); err != nil {
		t.Fatal(err)
	}
	before := journalBytes(t, UnitDir(sd, sw.Units[0].ID))
	if _, err := ExecShard(context.Background(), sd, testRunner{}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, journalBytes(t, UnitDir(sd, sw.Units[0].ID))) {
		t.Fatal("re-exec touched a completed unit's journal")
	}
	if got := mergedReport(t, dir); !bytes.Equal(got, ref) {
		t.Fatal("re-exec changed the merged report")
	}
}

func journalBytes(t *testing.T, unitDir string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(unitDir, campaign.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// interruptRunner cancels the campaign context after k measure calls of
// one chosen unit — an in-process stand-in for an executor dying
// mid-unit (the real SIGKILL variant lives in proc_test.go).
type interruptRunner struct {
	unit   string
	after  int
	cancel context.CancelFunc

	mu    sync.Mutex
	calls int
	armed bool
}

func (r *interruptRunner) Setup(u Unit) (campaign.Manifest, bench.Plan, func() (float64, error), error) {
	man, plan, measure, err := testRunner{}.Setup(u)
	if err != nil || u.ID != r.unit {
		return man, plan, measure, err
	}
	wrapped := func() (float64, error) {
		r.mu.Lock()
		r.calls++
		fire := r.armed && r.calls == r.after
		r.mu.Unlock()
		if fire {
			r.cancel()
		}
		return measure()
	}
	return man, plan, wrapped, nil
}

// TestReassignedShardResumesFromJournal: an executor dies mid-unit; the
// replacement resumes from the journal (never re-measuring completed
// observations) and the merged report is byte-identical to the
// untroubled run.
func TestReassignedShardResumesFromJournal(t *testing.T) {
	const units = 6
	ref := func() []byte {
		dir := t.TempDir()
		sw := buildSweep(t, dir, units, 2)
		return execAll(t, dir, sw)
	}()

	dir := t.TempDir()
	sw := buildSweep(t, dir, units, 2)
	victim := sw.Units[4].ID // lives in shard 1
	sd0 := filepath.Join(dir, ShardDirName(0))
	sd1 := filepath.Join(dir, ShardDirName(1))
	if _, err := ExecShard(context.Background(), sd0, testRunner{}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	// First attempt on shard 1 dies mid-victim (after 7 calls: warmup
	// plus a few journaled samples).
	ctx, cancel := context.WithCancel(context.Background())
	r := &interruptRunner{unit: victim, after: 7, cancel: cancel, armed: true}
	if _, err := ExecShard(ctx, sd1, r, ExecOptions{Attempt: 1}); err == nil {
		t.Fatal("interrupted executor reported success")
	}
	st, err := campaignState(UnitDir(sd1, victim))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Records) == 0 {
		t.Fatal("no journaled observations before the interrupt; the test exercises nothing")
	}
	// Reassignment: a fresh executor on the same shard dir.
	r2 := &interruptRunner{unit: victim, cancel: func() {}}
	if _, err := ExecShard(context.Background(), sd1, r2, ExecOptions{Attempt: 2}); err != nil {
		t.Fatal(err)
	}
	// The resumed attempt must not have re-measured unit 3 of the shard
	// (already completed) nor re-collected the victim's journaled
	// samples: its measure was invoked only for fast-forward replay plus
	// the remaining observations, i.e. exactly plan total (14) calls.
	if r2.calls != 14 {
		t.Errorf("reassigned executor made %d measure calls for the victim, want 14 (replay + remainder)", r2.calls)
	}
	if got := mergedReport(t, dir); !bytes.Equal(got, ref) {
		t.Errorf("merged report after reassignment differs from untroubled run:\n--- ref\n%s\n--- got\n%s", ref, got)
	}
}

func campaignState(dir string) (campaign.State, error) {
	_, st, err := campaign.Load(dir)
	return st, err
}

// --- supervisor ---

// fakeHandle is an in-process "executor" the supervisor can wait on and
// kill.
type fakeHandle struct {
	done chan struct{}
	once sync.Once
	err  error
}

func newFakeHandle() *fakeHandle { return &fakeHandle{done: make(chan struct{})} }

func (h *fakeHandle) Wait() error { <-h.done; return h.err }
func (h *fakeHandle) Kill() error { h.finish(errors.New("killed")); return nil }
func (h *fakeHandle) finish(err error) {
	h.once.Do(func() { h.err = err; close(h.done) })
}

// TestSuperviseStallKillAndLoss: executors that never heartbeat are
// detected as stalled, killed, reassigned under the retry budget, and
// the shard is finally reported lost — explicitly.
func TestSuperviseStallKillAndLoss(t *testing.T) {
	dir := t.TempDir()
	buildSweep(t, dir, 2, 1)
	var mu sync.Mutex
	var attempts int
	start := func(shardDir string, attempt int) (Handle, error) {
		mu.Lock()
		attempts++
		mu.Unlock()
		return newFakeHandle(), nil // never beats, never exits
	}
	statuses, err := Supervise(context.Background(), dir, start, Options{
		HeartbeatTimeout: 80 * time.Millisecond,
		Poll:             10 * time.Millisecond,
		Retries:          2,
		Backoff:          time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 1 {
		t.Fatalf("got %d statuses", len(statuses))
	}
	st := statuses[0]
	if !st.Lost || st.Attempts != 3 || st.Stalls != 3 {
		t.Fatalf("want lost after 3 stalled attempts, got %+v", st)
	}
	if attempts != 3 {
		t.Fatalf("start called %d times, want 3", attempts)
	}
	if !strings.Contains(st.Err, "stalled") {
		t.Fatalf("status does not name the stall: %+v", st)
	}

	// Graceful degradation: the merge accounts the lost shard's units as
	// explicit losses and degrades the campaign verdict.
	rep, err := Merge(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnitsLost != 2 || rep.Stop != bench.StopDegraded {
		t.Fatalf("want 2 lost units and StopDegraded, got lost=%d stop=%q", rep.UnitsLost, rep.Stop)
	}
	var buf bytes.Buffer
	if err := rep.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "LOST") || !strings.Contains(out, "DEGRADED") {
		t.Fatalf("report hides the loss:\n%s", out)
	}
	lossFindings := 0
	for _, f := range rep.Findings {
		if f.Rule == 4 {
			lossFindings++
		}
	}
	if lossFindings != 2 {
		t.Fatalf("want one Rule 4 finding per lost unit, got %d", lossFindings)
	}
}

// TestSuperviseInProcessExecutors drives real ExecShard work through
// the supervisor with in-process executors, crashing the first attempt
// of one shard; the supervisor reassigns it and the merged report is
// byte-identical to the untroubled single-process run.
func TestSuperviseInProcessExecutors(t *testing.T) {
	const units = 6
	ref := func() []byte {
		dir := t.TempDir()
		sw := buildSweep(t, dir, units, 1)
		return execAll(t, dir, sw)
	}()

	dir := t.TempDir()
	sw := buildSweep(t, dir, units, 2)
	victim := sw.Units[1].ID
	var mu sync.Mutex
	firstCrash := true
	start := func(shardDir string, attempt int) (Handle, error) {
		h := newFakeHandle()
		ctx, cancel := context.WithCancel(context.Background())
		runner := UnitRunner(testRunner{})
		mu.Lock()
		if filepath.Base(shardDir) == ShardDirName(0) && firstCrash {
			firstCrash = false
			runner = &interruptRunner{unit: victim, after: 5, cancel: cancel, armed: true}
		}
		mu.Unlock()
		go func() {
			defer cancel()
			_, err := ExecShard(ctx, shardDir, runner, ExecOptions{Attempt: attempt, Heartbeat: 5 * time.Millisecond})
			h.finish(err)
		}()
		return h, nil
	}
	statuses, err := Supervise(context.Background(), dir, start, Options{
		HeartbeatTimeout: 2 * time.Second,
		Poll:             10 * time.Millisecond,
		Retries:          2,
		Backoff:          time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range statuses {
		if st.Lost {
			t.Fatalf("shard lost despite retry budget: %+v", st)
		}
	}
	if statuses[0].Attempts != 2 || statuses[0].Crashes != 1 {
		t.Fatalf("shard 0 should have crashed once and been reassigned: %+v", statuses[0])
	}
	if got := mergedReport(t, dir); !bytes.Equal(got, ref) {
		t.Errorf("merged report after supervised crash differs:\n--- ref\n%s\n--- got\n%s", ref, got)
	}
}

// TestMergeRefusesDriftedUnit: a unit journal recorded under a
// different seed must refuse the merge, naming the field.
func TestMergeRefusesDriftedUnit(t *testing.T) {
	dir := t.TempDir()
	sw := buildSweep(t, dir, 2, 1)
	sd := filepath.Join(dir, ShardDirName(0))
	if _, err := ExecShard(context.Background(), sd, testRunner{}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	// Tamper with one recorded unit manifest: a different seed.
	udir := UnitDir(sd, sw.Units[0].ID)
	mpath := filepath.Join(udir, campaign.ManifestFile)
	b, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var man campaign.Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		t.Fatal(err)
	}
	man.Seed++
	nb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, nb, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Merge(dir)
	if !errors.Is(err, campaign.ErrManifestDrift) {
		t.Fatalf("drifted unit manifest not refused: %v", err)
	}
	if !strings.Contains(err.Error(), "seed") {
		t.Fatalf("refusal does not name the drifted field: %v", err)
	}
}

// TestMergeRefusesForeignShard: a shard.json from a different sweep is
// refused with a named sweep-hash mismatch.
func TestMergeRefusesForeignShard(t *testing.T) {
	dir := t.TempDir()
	buildSweep(t, dir, 2, 1)
	sd := filepath.Join(dir, ShardDirName(0))
	m, err := LoadManifest(sd)
	if err != nil {
		t.Fatal(err)
	}
	m.SweepHash = strings.Repeat("0", 64)
	if err := writeJSON(filepath.Join(sd, ManifestFile), m); err != nil {
		t.Fatal(err)
	}
	_, err = Merge(dir)
	if !errors.Is(err, ErrShardDrift) {
		t.Fatalf("foreign shard not refused: %v", err)
	}
	if !strings.Contains(err.Error(), "sweep hash") {
		t.Fatalf("refusal does not name the field: %v", err)
	}
}

// TestSeamChecksRun: with healthy shards the seam checks run and report
// no drift; the merged manifest records per-shard env fingerprints.
func TestSeamChecksRun(t *testing.T) {
	dir := t.TempDir()
	sw := buildSweep(t, dir, 6, 3)
	execAll(t, dir, sw)
	rep, err := Merge(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Seams) != 2 {
		t.Fatalf("want 2 seams for 3 shards, got %d", len(rep.Seams))
	}
	for _, sc := range rep.Seams {
		if !sc.Checked {
			t.Fatalf("seam %d|%d not checked", sc.Left, sc.Right)
		}
		if sc.Drift {
			t.Fatalf("identical-environment sweep flagged seam drift: %+v", sc)
		}
	}
	for _, s := range rep.Shards {
		if s.EnvFingerprint == "" {
			t.Fatalf("shard %d has no env fingerprint", s.Index)
		}
	}
	if err := WriteMerged(dir, rep); err != nil {
		t.Fatal(err)
	}
	var mm MergedManifest
	if err := readJSON(filepath.Join(dir, MergedFile), &mm); err != nil {
		t.Fatal(err)
	}
	if mm.SweepHash != sw.SweepHash || len(mm.Shards) != 3 || mm.Shards[1].EnvFingerprint == "" {
		t.Fatalf("merged manifest incomplete: %+v", mm)
	}
}

// TestSeamDetectsExecutorDrift synthesizes the failure the seam check
// exists for: one executor's machine suffers intermittent interference
// (a co-tenant, a cron job — the shared-runner contamination
// EXPERIMENTS.md narrates), spiking a fraction of its observations.
// Per-unit median normalization cannot hide it, and Pettitt localizes
// the shift exactly at the merge seam.
func TestSeamDetectsExecutorDrift(t *testing.T) {
	dir := t.TempDir()
	sw := buildSweep(t, dir, 8, 2)
	sd0 := filepath.Join(dir, ShardDirName(0))
	sd1 := filepath.Join(dir, ShardDirName(1))
	if _, err := ExecShard(context.Background(), sd0, testRunner{}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecShard(context.Background(), sd1, driftRunner{factor: 5}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	rep, err := Merge(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Seams) != 1 || !rep.Seams[0].Checked {
		t.Fatalf("seam not checked: %+v", rep.Seams)
	}
	if !rep.Seams[0].Drift {
		t.Fatalf("contaminated executor not flagged at the seam: %+v", rep.Seams[0])
	}
	found := false
	for _, f := range rep.Findings {
		if f.Rule == 6 && strings.Contains(f.Message, "merge seam") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Rule 6 finding for the seam drift: %v", rep.Findings)
	}
	_ = sw
}

// driftRunner measures like testRunner on a machine with intermittent
// interference: just under half of each unit's observations (every
// other sample among the first ten) are inflated by factor. The spikes
// leave the unit median in the clean cluster, so per-unit
// normalization preserves the contamination for the seam check to find.
type driftRunner struct{ factor float64 }

func (r driftRunner) Setup(u Unit) (campaign.Manifest, bench.Plan, func() (float64, error), error) {
	man, plan, measure, err := testRunner{}.Setup(u)
	if err != nil {
		return man, plan, nil, err
	}
	calls := 0
	skew := func() (float64, error) {
		calls++
		v, err := measure()
		// Calls 1-2 are warmup; spike samples 1,3,5,7,9 (calls 3-11 odd).
		if calls >= 3 && calls <= 11 && calls%2 == 1 {
			v *= r.factor
		}
		return v, err
	}
	return man, plan, skew, nil
}

// TestMergeByteIdenticalAcrossJournalFormats is the shard-level
// acceptance test for journal v2: the same sweep executed with v1 and
// v2 unit journals merges to byte-identical reports, the v2 journals
// really are the chunked binary format (and smaller), and a mixed
// sweep — some unit journals converted in place after the run — still
// merges to the same bytes, because the merge replays records, not
// formats.
func TestMergeByteIdenticalAcrossJournalFormats(t *testing.T) {
	const k, n = 6, 3
	dirV1, dirV2 := t.TempDir(), t.TempDir()

	swV1 := buildSweep(t, dirV1, k, n)
	repV1 := execAll(t, dirV1, swV1)

	swV2, err := NewSweep("test-sweep", makeUnits(t, k, 42), testFaultFP(t), testEnv, n)
	if err != nil {
		t.Fatal(err)
	}
	swV2.Journal = "v2"
	if err := Create(dirV2, swV2); err != nil {
		t.Fatal(err)
	}
	if swV2.SweepHash != swV1.SweepHash {
		t.Fatal("journal format leaked into sweep identity")
	}
	repV2 := execAll(t, dirV2, swV2)

	if !bytes.Equal(repV1, repV2) {
		t.Fatalf("v1 and v2 sweeps produced different reports:\n--- v1 ---\n%s\n--- v2 ---\n%s", repV1, repV2)
	}

	var v1Bytes, v2Bytes int64
	for i := 0; i < n; i++ {
		for _, u := range swV2.Shards()[i].Units {
			jp := filepath.Join(UnitDir(filepath.Join(dirV2, ShardDirName(i)), u.ID), campaign.JournalFile)
			data, err := os.ReadFile(jp)
			if err != nil {
				t.Fatal(err)
			}
			if campaign.SniffFormat(data) != campaign.FormatV2 {
				t.Fatalf("unit %s journal is not v2", u.ID)
			}
			v2Bytes += int64(len(data))
		}
		for _, u := range swV1.Shards()[i].Units {
			jp := filepath.Join(UnitDir(filepath.Join(dirV1, ShardDirName(i)), u.ID), campaign.JournalFile)
			st, err := os.Stat(jp)
			if err != nil {
				t.Fatal(err)
			}
			v1Bytes += st.Size()
		}
	}
	if v2Bytes >= v1Bytes {
		t.Errorf("v2 unit journals not smaller: %d vs %d bytes", v2Bytes, v1Bytes)
	}

	// Mixed formats within one sweep: convert shard 0's unit journals of
	// the v1 sweep to v2 in place; the merge must not notice.
	for _, u := range swV1.Shards()[0].Units {
		ud := UnitDir(filepath.Join(dirV1, ShardDirName(0)), u.ID)
		if _, err := campaign.ConvertJournal(ud, campaign.FormatV2, 0); err != nil {
			t.Fatalf("converting unit %s: %v", u.ID, err)
		}
	}
	if mixed := mergedReport(t, dirV1); !bytes.Equal(mixed, repV1) {
		t.Fatal("mixed-format sweep merged to different report bytes")
	}
}
