package shard

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSweepBytes builds a small valid sweep.json for seeding.
func fuzzSweepBytes(tb testing.TB, shards int) []byte {
	tb.Helper()
	dir := tb.TempDir()
	sw := buildSweep(tb, dir, 4, shards)
	_ = sw
	data, err := os.ReadFile(filepath.Join(dir, SweepFile))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzLoadSweep throws arbitrary sweep.json bytes at the sweep loader.
// LoadSweep must never panic, and anything it accepts must be
// internally consistent: the recorded hash matches a recomputation over
// the recorded units (tamper with either and the load is refused), the
// partition covers the canonical order exactly, and every unit ID is
// filesystem-safe — the same invariants NewSweep enforces at creation.
func FuzzLoadSweep(f *testing.F) {
	valid := fuzzSweepBytes(f, 2)
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"version":1,"units":[],"num_shards":0}`))
	f.Add([]byte(`{"version":1,"units":[{"id":"../evil","seed":1}],"num_shards":1}`))
	// Tampered seeds: flip a unit seed, and flip a hash character.
	if i := len(valid) / 2; i > 0 {
		t := append([]byte(nil), valid...)
		t[i] ^= 0x04
		f.Add(t)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, SweepFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		sw, err := LoadSweep(dir)
		if err != nil {
			return
		}
		want, herr := hashSweep(sw.Version, sw.Units, sw.FaultFingerprint)
		if herr != nil || sw.SweepHash != want {
			t.Fatalf("accepted sweep fails hash recomputation: %v (recorded %s, want %s)",
				herr, sw.SweepHash, want)
		}
		if sw.NumShards < 1 || sw.NumShards > len(sw.Units) {
			t.Fatalf("accepted sweep with NumShards %d over %d units", sw.NumShards, len(sw.Units))
		}
		ranges := Partition(len(sw.Units), sw.NumShards)
		next := 0
		for _, r := range ranges {
			if r[0] != next || r[1] <= r[0] {
				t.Fatalf("partition gap/empty range %v at %d", r, next)
			}
			next = r[1]
		}
		if next != len(sw.Units) {
			t.Fatalf("partition covers %d of %d units", next, len(sw.Units))
		}
		for _, u := range sw.Units {
			if !safeID(u.ID) {
				t.Fatalf("accepted sweep with unsafe unit ID %q", u.ID)
			}
		}
		// Shard manifests derived from an accepted sweep must round-trip
		// through Create/LoadManifest unchanged.
		sub := filepath.Join(dir, "out")
		if err := Create(sub, sw); err != nil {
			t.Fatalf("Create refused an accepted sweep: %v", err)
		}
		for i := range sw.Shards() {
			m, err := LoadManifest(filepath.Join(sub, ShardDirName(i)))
			if err != nil {
				t.Fatalf("shard %d manifest does not round-trip: %v", i, err)
			}
			if m.SweepHash != sw.SweepHash || m.Index != i {
				t.Fatalf("shard %d manifest identity mangled: %+v", i, m)
			}
		}
	})
}

// FuzzLoadManifest throws arbitrary shard.json bytes at the shard
// manifest loader and the merge-side drift check: no panics, and a
// manifest that decodes is either consistent with its sweep or refused
// by checkShardManifest with ErrShardDrift — never silently merged.
func FuzzLoadManifest(f *testing.F) {
	swDir := f.TempDir()
	sw := buildSweep(f, swDir, 4, 2)
	want := sw.Shards()[0]
	valid, err := json.Marshal(want)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"shard":1,"num_shards":2}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, ManifestFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadManifest(dir)
		if err != nil {
			return
		}
		err = checkShardManifest(got, want)
		if err != nil && !errors.Is(err, ErrShardDrift) {
			t.Fatalf("drift check failed with non-drift error: %v", err)
		}
		if err == nil {
			// Accepted as matching: every identity field must agree.
			if got.SweepHash != want.SweepHash || got.FaultFingerprint != want.FaultFingerprint ||
				got.Index != want.Index || len(got.Units) != len(want.Units) {
				t.Fatalf("drift check passed a mismatched manifest:\n got %+v\nwant %+v", got, want)
			}
		}
	})
}
