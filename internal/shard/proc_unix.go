//go:build unix

package shard

import (
	"os"
	"os/exec"
	"syscall"
)

// setProcGroup puts the executor in its own process group so a kill
// reaches every process it forked, not just the leader.
func setProcGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killProc SIGKILLs the executor's whole process group, falling back to
// the single process if the group is already gone.
func killProc(p *os.Process) error {
	if p == nil {
		return nil
	}
	if err := syscall.Kill(-p.Pid, syscall.SIGKILL); err == nil {
		return nil
	}
	return p.Kill()
}
