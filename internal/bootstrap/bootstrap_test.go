package bootstrap

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/stats"
)

func TestPercentileCIMeanCoverage(t *testing.T) {
	// Coverage of the percentile bootstrap for the mean of a normal
	// population: close to nominal.
	outer := rand.New(rand.NewPCG(1, 1))
	const trials = 200
	hits := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 40)
		for i := range xs {
			xs[i] = 10 + 2*outer.NormFloat64()
		}
		rng := rand.New(rand.NewPCG(uint64(trial), 7))
		iv, err := CI(xs, stats.Mean, Percentile, 500, 0.95, rng)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(10) {
			hits++
		}
	}
	cov := float64(hits) / trials
	if cov < 0.88 || cov > 0.995 {
		t.Errorf("coverage = %.3f, want ≈0.95", cov)
	}
}

func TestBCaImprovesSkewedCoverage(t *testing.T) {
	// For the CoV of a skewed population, BCa coverage should not trail
	// the percentile method's.
	trueCoV := math.Sqrt(math.Exp(0.25) - 1) // CoV of LogNormal(µ, 0.5)
	outer := rand.New(rand.NewPCG(2, 2))
	const trials = 150
	hitP, hitB := 0, 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 60)
		for i := range xs {
			xs[i] = math.Exp(0.5 * outer.NormFloat64())
		}
		rngP := rand.New(rand.NewPCG(uint64(trial), 3))
		rngB := rand.New(rand.NewPCG(uint64(trial), 3))
		ivP, err := CI(xs, stats.CoV, Percentile, 600, 0.9, rngP)
		if err != nil {
			t.Fatal(err)
		}
		ivB, err := CI(xs, stats.CoV, BCa, 600, 0.9, rngB)
		if err != nil {
			t.Fatal(err)
		}
		if ivP.Contains(trueCoV) {
			hitP++
		}
		if ivB.Contains(trueCoV) {
			hitB++
		}
	}
	covP := float64(hitP) / trials
	covB := float64(hitB) / trials
	if covB+0.03 < covP {
		t.Errorf("BCa coverage %.3f clearly below percentile %.3f", covB, covP)
	}
	if covB < 0.75 {
		t.Errorf("BCa coverage %.3f too far below nominal 0.90", covB)
	}
}

func TestCIValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if _, err := CI(xs[:4], stats.Mean, Percentile, 500, 0.95, rng); err != ErrSampleSize {
		t.Errorf("err = %v", err)
	}
	if _, err := CI(xs, stats.Mean, Percentile, 50, 0.95, rng); err != ErrResamples {
		t.Errorf("err = %v", err)
	}
	if _, err := CI(xs, stats.Mean, Percentile, 500, 1.5, rng); err != ErrConfidence {
		t.Errorf("err = %v", err)
	}
}

func TestConstantSampleZeroWidth(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	xs := []float64{4, 4, 4, 4, 4, 4, 4, 4}
	iv, err := CI(xs, stats.Mean, Percentile, 200, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 4 || iv.Hi != 4 || iv.Center != 4 {
		t.Errorf("constant sample CI = %v", iv)
	}
}

func TestMedianCIAgainstRankMethod(t *testing.T) {
	// The bootstrap median CI should roughly agree with the rank-based
	// CI on the same data.
	rng := rand.New(rand.NewPCG(6, 6))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = math.Exp(0.4 * rng.NormFloat64())
	}
	iv, err := CI(xs, stats.Median, Percentile, 2000, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	med := stats.Median(xs)
	if !iv.Contains(med) {
		t.Error("bootstrap CI must contain the sample median")
	}
	if iv.Width() <= 0 || iv.Width() > med {
		t.Errorf("implausible width %g", iv.Width())
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	xs := make([]float64, 30)
	src := rand.New(rand.NewPCG(9, 9))
	for i := range xs {
		xs[i] = src.NormFloat64()
	}
	a, err := CI(xs, stats.Mean, BCa, 500, 0.95, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CI(xs, stats.Mean, BCa, 500, 0.95, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed produced different intervals")
	}
}

func TestDifferenceCI(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	xs := make([]float64, 80)
	ys := make([]float64, 80)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()
		ys[i] = 7 + rng.NormFloat64()
	}
	iv, err := DifferenceCI(xs, ys, stats.Median, 800, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	// True median difference is 2; the CI should bracket it and exclude 0.
	if !iv.Contains(2) {
		t.Errorf("difference CI %v misses the true difference 2", iv)
	}
	if iv.Contains(0) {
		t.Errorf("difference CI %v should exclude 0", iv)
	}
	if _, err := DifferenceCI(xs[:3], ys, stats.Median, 800, 0.95, rng); err != ErrSampleSize {
		t.Error("tiny group should error")
	}
	if _, err := DifferenceCI(xs, ys, stats.Median, 10, 0.95, rng); err != ErrResamples {
		t.Error("too few resamples should error")
	}
	if _, err := DifferenceCI(xs, ys, stats.Median, 800, 0, rng); err != ErrConfidence {
		t.Error("bad confidence should error")
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// The interval AND the caller rng's position afterwards must be
	// bit-identical for every worker count (exactly two base draws are
	// consumed regardless of sharding).
	xs := make([]float64, 50)
	src := rand.New(rand.NewPCG(11, 11))
	for i := range xs {
		xs[i] = math.Exp(0.3 * src.NormFloat64())
	}
	for _, method := range []Method{Percentile, BCa} {
		run := func(workers int) (interval, next any) {
			rng := rand.New(rand.NewPCG(42, 43))
			iv, err := CIWorkers(xs, stats.Median, method, 400, 0.95, rng, workers)
			if err != nil {
				t.Fatalf("method=%v workers=%d: %v", method, workers, err)
			}
			return iv, rng.Uint64()
		}
		serialIV, serialNext := run(1)
		for _, workers := range []int{2, 3, 8, 0} {
			iv, next := run(workers)
			if iv != serialIV {
				t.Errorf("method=%v workers=%d: interval %v differs from serial %v",
					method, workers, iv, serialIV)
			}
			if next != serialNext {
				t.Errorf("method=%v workers=%d: caller rng advanced differently than serial",
					method, workers)
			}
		}
	}
}

func TestDifferenceCIWorkerCountInvariance(t *testing.T) {
	src := rand.New(rand.NewPCG(12, 12))
	xs := make([]float64, 40)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = 5 + src.NormFloat64()
	}
	for i := range ys {
		ys[i] = 6 + src.NormFloat64()
	}
	run := func(workers int) (interval, next any) {
		rng := rand.New(rand.NewPCG(77, 78))
		iv, err := DifferenceCIWorkers(xs, ys, stats.Median, 400, 0.9, rng, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return iv, rng.Uint64()
	}
	serialIV, serialNext := run(1)
	for _, workers := range []int{2, 5, 0} {
		iv, next := run(workers)
		if iv != serialIV {
			t.Errorf("workers=%d: interval %v differs from serial %v", workers, iv, serialIV)
		}
		if next != serialNext {
			t.Errorf("workers=%d: caller rng advanced differently than serial", workers)
		}
	}
}
