// Package bootstrap implements resampling confidence intervals — the
// "more advanced statistical techniques such as bootstrap [15, 17]" the
// paper points to beyond its minimal rule set. It provides the
// percentile method and the bias-corrected-and-accelerated (BCa) method
// of Efron & Tibshirani for arbitrary statistics, plus a two-sample
// difference helper for comparisons where no analytic CI exists.
//
// Resampling is sharded across workers with one PCG stream per resample,
// derived from exactly two draws of the caller's rng; the resulting
// interval is therefore bit-identical for every worker count, and the
// caller's rng advances identically whether the work ran on one
// goroutine or many (Rule 9 applied to our own analyses).
package bootstrap

import (
	"errors"
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"

	"repro/internal/ci"
	"repro/internal/dist"
	"repro/internal/stats"
)

// Errors.
var (
	ErrSampleSize = errors.New("bootstrap: sample too small")
	ErrResamples  = errors.New("bootstrap: need at least 100 resamples")
	ErrConfidence = errors.New("bootstrap: confidence must be in (0, 1)")
	ErrDegenerate = errors.New("bootstrap: statistic is degenerate across resamples")
)

// Statistic maps a sample to a scalar (e.g. stats.Median, a trimmed
// mean, CoV, a quantile).
type Statistic func([]float64) float64

// Method selects the interval construction.
type Method int

const (
	// Percentile uses the raw bootstrap distribution's quantiles.
	Percentile Method = iota
	// BCa applies Efron's bias correction and acceleration, giving
	// second-order accurate intervals for skewed statistics.
	BCa
)

// CI computes a bootstrap confidence interval for stat over xs using B
// resamples on all available cores. The rng must be supplied for
// reproducibility; see CIWorkers for the worker-count invariance
// guarantee.
func CI(xs []float64, stat Statistic, method Method, b int, confidence float64, rng *rand.Rand) (ci.Interval, error) {
	return CIWorkers(xs, stat, method, b, confidence, rng, 0)
}

// CIWorkers is CI with the resamples sharded over up to workers
// goroutines (0 = GOMAXPROCS, 1 = serial). Each resample draws from its
// own PCG stream derived from two rng draws, so the interval — and the
// caller rng's position afterwards — is identical for every worker
// count. The statistic must be safe for concurrent calls on distinct
// slices (pure functions like stats.Median are).
func CIWorkers(xs []float64, stat Statistic, method Method, b int, confidence float64, rng *rand.Rand, workers int) (ci.Interval, error) {
	n := len(xs)
	if n < 8 {
		return ci.Interval{}, ErrSampleSize
	}
	if b < 100 {
		return ci.Interval{}, ErrResamples
	}
	if confidence <= 0 || confidence >= 1 {
		return ci.Interval{}, ErrConfidence
	}
	theta := stat(xs)

	// Bootstrap distribution, one derived stream per resample.
	boot := make([]float64, b)
	base1, base2 := rng.Uint64(), rng.Uint64()
	forEachShard(b, workers, func(start, end int) {
		resample := make([]float64, n)
		pcg := rand.NewPCG(0, 0)
		r := rand.New(pcg)
		for i := start; i < end; i++ {
			pcg.Seed(streamSeeds(base1, base2, i))
			for j := 0; j < n; j++ {
				resample[j] = xs[r.IntN(n)]
			}
			boot[i] = stat(resample)
		}
	})
	sort.Float64s(boot)
	if boot[0] == boot[b-1] {
		// All resamples identical: a zero-width interval is exact.
		return ci.Interval{Lo: boot[0], Hi: boot[0], Confidence: confidence, Center: theta}, nil
	}

	alpha := 1 - confidence
	lo, hi := alpha/2, 1-alpha/2
	if method == BCa {
		var err error
		lo, hi, err = bcaLevels(xs, boot, theta, stat, alpha, workers)
		if err != nil {
			return ci.Interval{}, err
		}
	}
	return ci.Interval{
		Lo:         stats.Quantile(boot, lo),
		Hi:         stats.Quantile(boot, hi),
		Confidence: confidence,
		Center:     theta,
	}, nil
}

// bcaLevels computes the BCa-adjusted quantile levels, sharding the
// O(n²) leave-one-out jackknife across workers.
func bcaLevels(xs, sortedBoot []float64, theta float64, stat Statistic, alpha float64, workers int) (float64, float64, error) {
	b := len(sortedBoot)
	// Bias correction z0: the normal quantile of the fraction of the
	// bootstrap distribution below the observed statistic.
	below := sort.SearchFloat64s(sortedBoot, theta)
	frac := float64(below) / float64(b)
	if frac <= 0 || frac >= 1 {
		return 0, 0, ErrDegenerate
	}
	z0 := dist.NormalQuantile(frac)

	// Acceleration a via jackknife.
	n := len(xs)
	jack := make([]float64, n)
	forEachShard(n, workers, func(start, end int) {
		tmp := make([]float64, 0, n-1)
		for i := start; i < end; i++ {
			tmp = tmp[:0]
			tmp = append(tmp, xs[:i]...)
			tmp = append(tmp, xs[i+1:]...)
			jack[i] = stat(tmp)
		}
	})
	var mean float64
	for _, v := range jack {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for _, v := range jack {
		d := mean - v
		num += d * d * d
		den += d * d
	}
	a := 0.0
	if den > 0 {
		a = num / (6 * math.Pow(den, 1.5))
	}

	adjust := func(z float64) float64 {
		w := z0 + z
		return dist.NormalCDF(z0 + w/(1-a*w))
	}
	lo := adjust(dist.NormalQuantile(alpha / 2))
	hi := adjust(dist.NormalQuantile(1 - alpha/2))
	if math.IsNaN(lo) || math.IsNaN(hi) || lo >= hi {
		return 0, 0, ErrDegenerate
	}
	return lo, hi, nil
}

// DifferenceCI bootstraps a CI for stat(ys) − stat(xs) by resampling the
// two groups independently — the distribution-free comparison to reach
// for when medians/quantiles of unequal-shape groups are compared and no
// analytic interval applies. Runs on all available cores; see
// DifferenceCIWorkers.
func DifferenceCI(xs, ys []float64, stat Statistic, b int, confidence float64, rng *rand.Rand) (ci.Interval, error) {
	return DifferenceCIWorkers(xs, ys, stat, b, confidence, rng, 0)
}

// DifferenceCIWorkers is DifferenceCI sharded over up to workers
// goroutines with the same worker-count-invariance guarantee as
// CIWorkers: one derived PCG stream per resample, two rng draws total.
func DifferenceCIWorkers(xs, ys []float64, stat Statistic, b int, confidence float64, rng *rand.Rand, workers int) (ci.Interval, error) {
	if len(xs) < 8 || len(ys) < 8 {
		return ci.Interval{}, ErrSampleSize
	}
	if b < 100 {
		return ci.Interval{}, ErrResamples
	}
	if confidence <= 0 || confidence >= 1 {
		return ci.Interval{}, ErrConfidence
	}
	theta := stat(ys) - stat(xs)
	boot := make([]float64, b)
	base1, base2 := rng.Uint64(), rng.Uint64()
	forEachShard(b, workers, func(start, end int) {
		rx := make([]float64, len(xs))
		ry := make([]float64, len(ys))
		pcg := rand.NewPCG(0, 0)
		r := rand.New(pcg)
		for i := start; i < end; i++ {
			pcg.Seed(streamSeeds(base1, base2, i))
			for j := range rx {
				rx[j] = xs[r.IntN(len(xs))]
			}
			for j := range ry {
				ry[j] = ys[r.IntN(len(ys))]
			}
			boot[i] = stat(ry) - stat(rx)
		}
	})
	sort.Float64s(boot)
	alpha := 1 - confidence
	return ci.Interval{
		Lo:         stats.Quantile(boot, alpha/2),
		Hi:         stats.Quantile(boot, 1-alpha/2),
		Confidence: confidence,
		Center:     theta,
	}, nil
}

// forEachShard splits [0, total) into contiguous chunks and runs fn over
// them on up to workers goroutines (0 = GOMAXPROCS). fn must only write
// to disjoint state per index range. workers == 1 (or total <= 1) runs
// inline with no goroutines.
func forEachShard(total, workers int, fn func(start, end int)) {
	if total <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		fn(0, total)
		return
	}
	chunk := (total + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < total; start += chunk {
		end := start + chunk
		if end > total {
			end = total
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// streamSeeds derives the i-th resample's PCG seed pair from the two
// base draws using the splitmix64 finalizer — a fixed function of
// (base1, base2, i), so shard boundaries never influence the streams.
func streamSeeds(base1, base2 uint64, i int) (uint64, uint64) {
	s := base1 + uint64(i)*0x9e3779b97f4a7c15
	return mix64(s), mix64(s ^ base2)
}

// mix64 is the splitmix64 output function (Steele et al.), a strong
// bijective mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b91e
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
