// Package bootstrap implements resampling confidence intervals — the
// "more advanced statistical techniques such as bootstrap [15, 17]" the
// paper points to beyond its minimal rule set. It provides the
// percentile method and the bias-corrected-and-accelerated (BCa) method
// of Efron & Tibshirani for arbitrary statistics, plus a two-sample
// difference helper for comparisons where no analytic CI exists.
package bootstrap

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/ci"
	"repro/internal/dist"
)

// Errors.
var (
	ErrSampleSize = errors.New("bootstrap: sample too small")
	ErrResamples  = errors.New("bootstrap: need at least 100 resamples")
	ErrConfidence = errors.New("bootstrap: confidence must be in (0, 1)")
	ErrDegenerate = errors.New("bootstrap: statistic is degenerate across resamples")
)

// Statistic maps a sample to a scalar (e.g. stats.Median, a trimmed
// mean, CoV, a quantile).
type Statistic func([]float64) float64

// Method selects the interval construction.
type Method int

const (
	// Percentile uses the raw bootstrap distribution's quantiles.
	Percentile Method = iota
	// BCa applies Efron's bias correction and acceleration, giving
	// second-order accurate intervals for skewed statistics.
	BCa
)

// CI computes a bootstrap confidence interval for stat over xs using B
// resamples. The rng must be supplied for reproducibility (Rule 9
// applied to our own analyses).
func CI(xs []float64, stat Statistic, method Method, b int, confidence float64, rng *rand.Rand) (ci.Interval, error) {
	n := len(xs)
	if n < 8 {
		return ci.Interval{}, ErrSampleSize
	}
	if b < 100 {
		return ci.Interval{}, ErrResamples
	}
	if confidence <= 0 || confidence >= 1 {
		return ci.Interval{}, ErrConfidence
	}
	theta := stat(xs)

	// Bootstrap distribution.
	boot := make([]float64, b)
	resample := make([]float64, n)
	for i := 0; i < b; i++ {
		for j := 0; j < n; j++ {
			resample[j] = xs[rng.IntN(n)]
		}
		boot[i] = stat(resample)
	}
	sort.Float64s(boot)
	if boot[0] == boot[b-1] {
		// All resamples identical: a zero-width interval is exact.
		return ci.Interval{Lo: boot[0], Hi: boot[0], Confidence: confidence, Center: theta}, nil
	}

	alpha := 1 - confidence
	lo, hi := alpha/2, 1-alpha/2
	if method == BCa {
		var err error
		lo, hi, err = bcaLevels(xs, boot, theta, stat, alpha)
		if err != nil {
			return ci.Interval{}, err
		}
	}
	return ci.Interval{
		Lo:         quantileSorted(boot, lo),
		Hi:         quantileSorted(boot, hi),
		Confidence: confidence,
		Center:     theta,
	}, nil
}

// bcaLevels computes the BCa-adjusted quantile levels.
func bcaLevels(xs, sortedBoot []float64, theta float64, stat Statistic, alpha float64) (float64, float64, error) {
	b := len(sortedBoot)
	// Bias correction z0: the normal quantile of the fraction of the
	// bootstrap distribution below the observed statistic.
	below := sort.SearchFloat64s(sortedBoot, theta)
	frac := float64(below) / float64(b)
	if frac <= 0 || frac >= 1 {
		return 0, 0, ErrDegenerate
	}
	z0 := dist.NormalQuantile(frac)

	// Acceleration a via jackknife.
	n := len(xs)
	jack := make([]float64, n)
	tmp := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		tmp = tmp[:0]
		tmp = append(tmp, xs[:i]...)
		tmp = append(tmp, xs[i+1:]...)
		jack[i] = stat(tmp)
	}
	var mean float64
	for _, v := range jack {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for _, v := range jack {
		d := mean - v
		num += d * d * d
		den += d * d
	}
	a := 0.0
	if den > 0 {
		a = num / (6 * math.Pow(den, 1.5))
	}

	adjust := func(z float64) float64 {
		w := z0 + z
		return dist.NormalCDF(z0 + w/(1-a*w))
	}
	lo := adjust(dist.NormalQuantile(alpha / 2))
	hi := adjust(dist.NormalQuantile(1 - alpha/2))
	if math.IsNaN(lo) || math.IsNaN(hi) || lo >= hi {
		return 0, 0, ErrDegenerate
	}
	return lo, hi, nil
}

// quantileSorted returns the type-7 quantile of a pre-sorted slice.
func quantileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	h := p * float64(len(s)-1)
	i := int(h)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i] + (h-float64(i))*(s[i+1]-s[i])
}

// DifferenceCI bootstraps a CI for stat(ys) − stat(xs) by resampling the
// two groups independently — the distribution-free comparison to reach
// for when medians/quantiles of unequal-shape groups are compared and no
// analytic interval applies.
func DifferenceCI(xs, ys []float64, stat Statistic, b int, confidence float64, rng *rand.Rand) (ci.Interval, error) {
	if len(xs) < 8 || len(ys) < 8 {
		return ci.Interval{}, ErrSampleSize
	}
	if b < 100 {
		return ci.Interval{}, ErrResamples
	}
	if confidence <= 0 || confidence >= 1 {
		return ci.Interval{}, ErrConfidence
	}
	theta := stat(ys) - stat(xs)
	boot := make([]float64, b)
	rx := make([]float64, len(xs))
	ry := make([]float64, len(ys))
	for i := 0; i < b; i++ {
		for j := range rx {
			rx[j] = xs[rng.IntN(len(xs))]
		}
		for j := range ry {
			ry[j] = ys[rng.IntN(len(ys))]
		}
		boot[i] = stat(ry) - stat(rx)
	}
	sort.Float64s(boot)
	alpha := 1 - confidence
	return ci.Interval{
		Lo:         quantileSorted(boot, alpha/2),
		Hi:         quantileSorted(boot, 1-alpha/2),
		Confidence: confidence,
		Center:     theta,
	}, nil
}
