package suite

import (
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
)

func quickConfig() Config {
	return Config{
		Cluster:     cluster.PizDaint(),
		Collectives: []string{Reduce, Bcast, Barrier},
		Ranks:       []int{2, 4, 8, 16},
		Bytes:       []int{8},
		MinRuns:     10,
		MaxRuns:     40,
		RelErr:      0.2,
		Seed:        1,
	}
}

func TestRunSuite(t *testing.T) {
	res, err := Run(context.Background(), quickConfig(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// 3 collectives × 4 process counts (barrier measured once per size).
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.MedianUs <= 0 {
			t.Errorf("%s p=%d: non-positive median", r.Collective, r.Ranks)
		}
		if r.CILoUs > r.MedianUs || r.MedianUs > r.CIHiUs {
			t.Errorf("%s p=%d: median %.4g outside its CI [%.4g, %.4g]",
				r.Collective, r.Ranks, r.MedianUs, r.CILoUs, r.CIHiUs)
		}
		if r.P99Us < r.MedianUs {
			t.Errorf("%s p=%d: p99 below median", r.Collective, r.Ranks)
		}
		if r.N < 10 || r.N > 40 {
			t.Errorf("%s p=%d: n=%d outside budget", r.Collective, r.Ranks, r.N)
		}
	}
	// Scaling models fitted for each collective.
	if len(res.Models) != 3 {
		t.Errorf("models = %d, want 3: %v", len(res.Models), res.Models)
	}
	for name, m := range res.Models {
		if m.Eval(16) <= 0 {
			t.Errorf("model %s evaluates non-positive", name)
		}
	}
}

func TestSuiteMediansGrowWithP(t *testing.T) {
	res, err := Run(context.Background(), quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	byColl := map[string][]Row{}
	for _, r := range res.Rows {
		byColl[r.Collective] = append(byColl[r.Collective], r)
	}
	for coll, rows := range byColl {
		if rows[len(rows)-1].MedianUs <= rows[0].MedianUs {
			t.Errorf("%s: median at p=%d (%.4g) not above p=%d (%.4g)",
				coll, rows[len(rows)-1].Ranks, rows[len(rows)-1].MedianUs,
				rows[0].Ranks, rows[0].MedianUs)
		}
	}
}

func TestSuiteAllCollectivesRun(t *testing.T) {
	cfg := quickConfig()
	cfg.Collectives = nil // default: all
	cfg.Ranks = []int{2, 5}
	cfg.MinRuns = 5
	cfg.MaxRuns = 8
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range res.Rows {
		seen[r.Collective] = true
	}
	for _, c := range AllCollectives {
		if !seen[c] {
			t.Errorf("collective %s never ran", c)
		}
	}
}

func TestSuiteValidation(t *testing.T) {
	cfg := quickConfig()
	cfg.Collectives = []string{"mystery"}
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Error("unknown collective should error")
	}
}

func TestWriteReport(t *testing.T) {
	res, err := Run(context.Background(), quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"reduce", "bcast", "barrier", "fitted scaling models", "median"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestSuiteDeterministicUnderSeed(t *testing.T) {
	a, err := Run(context.Background(), quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d diverged under the same seed", i)
		}
	}
}

func TestSuiteInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first observation
	res, err := Run(ctx, quickConfig(), nil)
	if err != nil {
		t.Fatalf("interrupted sweep must return a partial result, got error: %v", err)
	}
	if !res.Interrupted {
		t.Error("Interrupted not set on a cancelled sweep")
	}
	var sb strings.Builder
	if err := res.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PARTIAL") {
		t.Error("report does not label an interrupted sweep as partial")
	}
}

func TestSuiteResilienceWired(t *testing.T) {
	cfg := quickConfig()
	cfg.Collectives = []string{Reduce}
	cfg.Ranks = []int{4}
	clean, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Rows[0].Stop == "" {
		t.Error("row carries no stop reason")
	}

	// A ceiling at the clean median rejects roughly half of all draws;
	// with a single retry per slot, ~25% of observation slots are lost,
	// far past a 10% degradation threshold — the row must surface
	// StopDegraded with its loss accounting rather than masquerade as a
	// clean measurement.
	cfg.Resilience = &bench.Resilience{
		ValueCeiling:    clean.Rows[0].MedianUs,
		MaxRetries:      1,
		MaxLossFraction: 0.1,
	}
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.Stop != bench.StopDegraded {
		t.Fatalf("stop = %q, want StopDegraded", row.Stop)
	}
	if row.SamplesLost == 0 {
		t.Error("degraded row reports zero losses")
	}
	var sb strings.Builder
	if err := res.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "DEGRADED") {
		t.Error("report does not flag the degraded row")
	}
	if !strings.Contains(out, "observation slot") {
		t.Error("report does not summarize the sweep's losses")
	}
}

func TestSuiteStreamsProgress(t *testing.T) {
	var sb strings.Builder
	cfg := quickConfig()
	cfg.Collectives = []string{Reduce}
	cfg.Ranks = []int{2, 4}
	if _, err := Run(context.Background(), cfg, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "reduce") {
		t.Error("no progress streamed")
	}
}
