package suite

import (
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
)

func quickConfig() Config {
	return Config{
		Cluster:     cluster.PizDaint(),
		Collectives: []string{Reduce, Bcast, Barrier},
		Ranks:       []int{2, 4, 8, 16},
		Bytes:       []int{8},
		MinRuns:     10,
		MaxRuns:     40,
		RelErr:      0.2,
		Seed:        1,
	}
}

func TestRunSuite(t *testing.T) {
	res, err := Run(context.Background(), quickConfig(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// 3 collectives × 4 process counts (barrier measured once per size).
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.MedianUs <= 0 {
			t.Errorf("%s p=%d: non-positive median", r.Collective, r.Ranks)
		}
		if r.CILoUs > r.MedianUs || r.MedianUs > r.CIHiUs {
			t.Errorf("%s p=%d: median %.4g outside its CI [%.4g, %.4g]",
				r.Collective, r.Ranks, r.MedianUs, r.CILoUs, r.CIHiUs)
		}
		if r.P99Us < r.MedianUs {
			t.Errorf("%s p=%d: p99 below median", r.Collective, r.Ranks)
		}
		if r.N < 10 || r.N > 40 {
			t.Errorf("%s p=%d: n=%d outside budget", r.Collective, r.Ranks, r.N)
		}
	}
	// Scaling models fitted for each collective.
	if len(res.Models) != 3 {
		t.Errorf("models = %d, want 3: %v", len(res.Models), res.Models)
	}
	for name, m := range res.Models {
		if m.Eval(16) <= 0 {
			t.Errorf("model %s evaluates non-positive", name)
		}
	}
}

func TestSuiteMediansGrowWithP(t *testing.T) {
	res, err := Run(context.Background(), quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	byColl := map[string][]Row{}
	for _, r := range res.Rows {
		byColl[r.Collective] = append(byColl[r.Collective], r)
	}
	for coll, rows := range byColl {
		if rows[len(rows)-1].MedianUs <= rows[0].MedianUs {
			t.Errorf("%s: median at p=%d (%.4g) not above p=%d (%.4g)",
				coll, rows[len(rows)-1].Ranks, rows[len(rows)-1].MedianUs,
				rows[0].Ranks, rows[0].MedianUs)
		}
	}
}

func TestSuiteAllCollectivesRun(t *testing.T) {
	cfg := quickConfig()
	cfg.Collectives = nil // default: all
	cfg.Ranks = []int{2, 5}
	cfg.MinRuns = 5
	cfg.MaxRuns = 8
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range res.Rows {
		seen[r.Collective] = true
	}
	for _, c := range AllCollectives {
		if !seen[c] {
			t.Errorf("collective %s never ran", c)
		}
	}
}

func TestSuiteValidation(t *testing.T) {
	cfg := quickConfig()
	cfg.Collectives = []string{"mystery"}
	if _, err := Run(context.Background(), cfg, nil); err == nil {
		t.Error("unknown collective should error")
	}
}

func TestWriteReport(t *testing.T) {
	res, err := Run(context.Background(), quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"reduce", "bcast", "barrier", "fitted scaling models", "median"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestSuiteDeterministicUnderSeed(t *testing.T) {
	a, err := Run(context.Background(), quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d diverged under the same seed", i)
		}
	}
}

func TestSuiteInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first observation
	res, err := Run(ctx, quickConfig(), nil)
	if err != nil {
		t.Fatalf("interrupted sweep must return a partial result, got error: %v", err)
	}
	if !res.Interrupted {
		t.Error("Interrupted not set on a cancelled sweep")
	}
	var sb strings.Builder
	if err := res.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PARTIAL") {
		t.Error("report does not label an interrupted sweep as partial")
	}
}

func TestSuiteResilienceWired(t *testing.T) {
	cfg := quickConfig()
	cfg.Collectives = []string{Reduce}
	cfg.Ranks = []int{4}
	clean, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Rows[0].Stop == "" {
		t.Error("row carries no stop reason")
	}

	// A ceiling at the clean median rejects roughly half of all draws;
	// with a single retry per slot, ~25% of observation slots are lost,
	// far past a 10% degradation threshold — the row must surface
	// StopDegraded with its loss accounting rather than masquerade as a
	// clean measurement.
	cfg.Resilience = &bench.Resilience{
		ValueCeiling:    clean.Rows[0].MedianUs,
		MaxRetries:      1,
		MaxLossFraction: 0.1,
	}
	res, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.Stop != bench.StopDegraded {
		t.Fatalf("stop = %q, want StopDegraded", row.Stop)
	}
	if row.SamplesLost == 0 {
		t.Error("degraded row reports zero losses")
	}
	var sb strings.Builder
	if err := res.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "DEGRADED") {
		t.Error("report does not flag the degraded row")
	}
	if !strings.Contains(out, "observation slot") {
		t.Error("report does not summarize the sweep's losses")
	}
}

func TestSuiteStreamsProgress(t *testing.T) {
	var sb strings.Builder
	cfg := quickConfig()
	cfg.Collectives = []string{Reduce}
	cfg.Ranks = []int{2, 4}
	if _, err := Run(context.Background(), cfg, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "reduce") {
		t.Error("no progress streamed")
	}
}

func TestSuiteWorkerCountBitIdentity(t *testing.T) {
	runWith := func(workers int) (*Result, string, string) {
		cfg := quickConfig()
		cfg.Workers = workers
		var progress strings.Builder
		res, err := Run(context.Background(), cfg, &progress)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		var rep strings.Builder
		if err := res.WriteReport(&rep); err != nil {
			t.Fatalf("Workers=%d: WriteReport: %v", workers, err)
		}
		return res, progress.String(), rep.String()
	}

	serial, serialProgress, serialReport := runWith(1)
	for _, workers := range []int{2, 8} {
		par, progress, report := runWith(workers)
		if len(par.Rows) != len(serial.Rows) {
			t.Fatalf("Workers=%d: %d rows, serial has %d", workers, len(par.Rows), len(serial.Rows))
		}
		for i := range serial.Rows {
			if par.Rows[i] != serial.Rows[i] {
				t.Errorf("Workers=%d: row %d differs from serial:\n  serial   %+v\n  parallel %+v",
					workers, i, serial.Rows[i], par.Rows[i])
			}
		}
		if len(par.Models) != len(serial.Models) {
			t.Errorf("Workers=%d: %d models, serial has %d", workers, len(par.Models), len(serial.Models))
		}
		for k, m := range serial.Models {
			if par.Models[k] != m {
				t.Errorf("Workers=%d: model %s differs from serial", workers, k)
			}
		}
		if progress != serialProgress {
			t.Errorf("Workers=%d: progress stream not byte-identical to serial", workers)
		}
		if report != serialReport {
			t.Errorf("Workers=%d: rendered report not byte-identical to serial", workers)
		}
	}
}

// TestShardUnionEqualsFullSweep pins the distributed-execution
// contract at the suite layer: because seeds are assigned from the full
// canonical enumeration before the shard filter, running the sweep as
// 3 independent shards and concatenating their rows reproduces the
// unsharded sweep bit-for-bit.
func TestShardUnionEqualsFullSweep(t *testing.T) {
	full, err := Run(context.Background(), quickConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	var union []Row
	models := 0
	for s := 0; s < shards; s++ {
		cfg := quickConfig()
		cfg.Shard, cfg.Shards = s, shards
		res, err := Run(context.Background(), cfg, nil)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if res.Interrupted {
			t.Fatalf("shard %d spuriously interrupted", s)
		}
		union = append(union, res.Rows...)
		models += len(res.Models)
		// A shard only fits groups it holds entirely; every model it does
		// fit must match the full sweep's fit exactly.
		for k, m := range res.Models {
			if full.Models[k] != m {
				t.Errorf("shard %d: model %s differs from full sweep", s, k)
			}
		}
	}
	if len(union) != len(full.Rows) {
		t.Fatalf("union has %d rows, full sweep %d", len(union), len(full.Rows))
	}
	for i := range full.Rows {
		if union[i] != full.Rows[i] {
			t.Errorf("row %d differs:\n  full  %+v\n  union %+v", i, full.Rows[i], union[i])
		}
	}
	if models > len(full.Models) {
		t.Errorf("shards fitted %d models, full sweep only %d", models, len(full.Models))
	}
}

func TestShardValidation(t *testing.T) {
	for _, tc := range []struct{ shard, shards int }{
		{3, 3}, {-1, 3}, {0, 1000}, {1, 0},
	} {
		cfg := quickConfig()
		cfg.Shard, cfg.Shards = tc.shard, tc.shards
		if _, err := Run(context.Background(), cfg, nil); err == nil {
			t.Errorf("Shard=%d Shards=%d accepted", tc.shard, tc.shards)
		}
	}
}

// cancelAfterWriter cancels a context once n progress lines were
// written, interrupting a sweep from inside its own progress stream.
type cancelAfterWriter struct {
	lines  int
	cancel context.CancelFunc
	sb     strings.Builder
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.sb.Write(p)
	w.lines -= strings.Count(string(p), "\n")
	if w.lines <= 0 {
		w.cancel()
	}
	return len(p), nil
}

func TestSuiteInterruptedUnderParallelism(t *testing.T) {
	cfg := quickConfig()
	cfg.Workers = 4
	cfg.Collectives = []string{Reduce, Bcast, Allreduce, Gather, Scatter}
	cfg.Ranks = []int{2, 4, 8, 16, 32}
	// A target the adaptive loop cannot reach keeps every configuration
	// busy until its 5000-sample budget, so the cancellation triggered by
	// the first progress line reliably lands mid-sweep.
	cfg.MinRuns = 200
	cfg.MaxRuns = 5000
	cfg.RelErr = 0.001
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cancelAfterWriter{lines: 1, cancel: cancel}
	res, err := Run(ctx, cfg, w)
	if err != nil {
		t.Fatalf("interrupted sweep must return a partial result, got error: %v", err)
	}
	if !res.Interrupted {
		t.Fatal("Interrupted not set on a sweep cancelled mid-flight")
	}
	if len(res.Rows) == 0 {
		t.Fatal("no completed rows checkpointed")
	}
	if len(res.Rows) >= 25 {
		t.Fatalf("all %d rows completed; the cancellation did not interrupt the sweep", len(res.Rows))
	}
	// The checkpointed rows must be an in-order subsequence of the
	// canonical sweep and individually valid.
	jobs, _ := enumerate(cfg.withDefaults())
	ji := 0
	for _, r := range res.Rows {
		for ji < len(jobs) &&
			(jobs[ji].coll != r.Collective || jobs[ji].ranks != r.Ranks || jobs[ji].bytes != r.Bytes) {
			ji++
		}
		if ji == len(jobs) {
			t.Fatalf("row %s p=%d not in canonical order", r.Collective, r.Ranks)
		}
		ji++
		if r.Stop != bench.StopInterrupted && r.MedianUs <= 0 {
			t.Errorf("%s p=%d: checkpointed row has non-positive median", r.Collective, r.Ranks)
		}
	}
	var sb strings.Builder
	if err := res.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PARTIAL") {
		t.Error("report does not label the interrupted sweep as partial")
	}
}
