package suite

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/ci"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/stats"
)

// ServeConfig parametrizes an offered-load sweep of the serve workload:
// the arrival process and server model are fixed while the arrival rate
// ramps through Loads × capacity, exposing the latency knee.
type ServeConfig struct {
	// Arrival is the arrival process; its Rate field is overridden per
	// load point (Kind, Periods, ON/OFF shape are preserved).
	Arrival serve.ArrivalConfig
	// Server is the simulated service under test.
	Server serve.ServerConfig
	// Loads are the offered-load fractions ρ of nominal capacity to
	// sweep (default 0.1…0.95). Capacity (req/s) is
	// Servers·BatchMax/(Mean + PerItem·(BatchMax−1)) — the peak
	// full-batch service rate.
	Loads []float64
	// Duration is the simulated time per epoch (default 10 s).
	Duration time.Duration
	// Epochs is the number of independently seeded epochs per load point
	// (default and minimum 6 — nonparametric CIs need n > 5). Epoch
	// latencies merge into one histogram per point.
	Epochs int
	// Confidence is the CI level for the tail quantiles (default 0.95).
	Confidence float64
	// KneeFactor declares the knee at the first load whose merged p99
	// exceeds KneeFactor × the lowest load's p99 (default 3).
	KneeFactor float64
	Seed       uint64
	// Workers bounds how many load points run concurrently. Zero selects
	// GOMAXPROCS; 1 is the serial path. Every epoch's seed is assigned
	// from the canonical (point, epoch) enumeration before fan-out and
	// each point's epochs run serially inside its job, so the Result —
	// including its JSON encoding — is bit-identical for every worker
	// count (Rule 9).
	Workers int
	// MaxRequests caps each epoch (0 = serve.DefaultMaxRequests).
	MaxRequests int
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Loads == nil {
		c.Loads = []float64{0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95}
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Epochs < 6 {
		c.Epochs = 6
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	if c.KneeFactor <= 1 {
		c.KneeFactor = 3
	}
	return c
}

// Capacity returns the sweep's nominal service capacity in req/s: the
// rate a ServeConfig's servers sustain with every batch full.
func (c ServeConfig) Capacity() float64 {
	srv := c.Server
	servers := srv.Servers
	if servers == 0 {
		servers = 1
	}
	batch := srv.BatchMax
	if batch == 0 {
		batch = 1
	}
	mean := srv.Service.Mean
	if mean == 0 {
		mean = time.Millisecond
	}
	perBatch := mean + srv.Service.PerItem*time.Duration(batch-1)
	return float64(servers) * float64(batch) / perBatch.Seconds()
}

// ServeRow is one measured load point.
type ServeRow struct {
	Load    float64 `json:"load"`     // offered fraction ρ of capacity
	RateRps float64 `json:"rate_rps"` // absolute offered rate

	Offered   int     `json:"offered"`
	Completed int     `json:"completed"`
	Dropped   int     `json:"dropped"`
	Batches   int     `json:"batches"`
	MeanBatch float64 `json:"mean_batch"` // 0 when no batch dispatched

	ThroughputRps float64 `json:"throughput_rps"`

	// Tail quantiles of the merged per-point histogram, in ms, each with
	// its rank-based nonparametric CI (ci.QuantileCIHist).
	P50Ms   float64 `json:"p50_ms"`
	P50LoMs float64 `json:"p50_lo_ms"`
	P50HiMs float64 `json:"p50_hi_ms"`
	P99Ms   float64 `json:"p99_ms"`
	P99LoMs float64 `json:"p99_lo_ms"`
	P99HiMs float64 `json:"p99_hi_ms"`
	P999Ms  float64 `json:"p999_ms"`
	MaxMs   float64 `json:"max_ms"`

	Stop bench.StopReason `json:"stop"`
}

// ServeResult is a complete load sweep.
type ServeResult struct {
	Mode        serve.LoopMode `json:"mode"`
	Arrival     string         `json:"arrival"`
	CapacityRps float64        `json:"capacity_rps"`
	DurationSec float64        `json:"duration_sec"`
	Epochs      int            `json:"epochs"`
	Seed        uint64         `json:"seed"`
	Rows        []ServeRow     `json:"rows"`
	// KneeLoad is the first swept load whose p99 exceeds KneeFactor ×
	// the base (lowest-load) p99; 0 when the sweep never knees.
	KneeLoad float64 `json:"knee_load"`
	// Omission is the coordinated-omission audit run at the highest
	// swept load on a stall-injected copy of the workload (only when the
	// config carries stalls; zero otherwise).
	OmissionRatio float64 `json:"omission_ratio"`
}

// servePoint is one load point with its canonically assigned epoch
// seeds, fixed before any fan-out.
type servePoint struct {
	load  float64
	rate  float64
	seeds []uint64
}

// enumerateServe builds the canonical load-point list. Seeds continue
// the serial seed++ walk over (point, epoch) in sweep order, mirroring
// the collective sweep's discipline.
func enumerateServe(cfg ServeConfig) []servePoint {
	cap := cfg.Capacity()
	seed := cfg.Seed
	pts := make([]servePoint, len(cfg.Loads))
	for i, load := range cfg.Loads {
		p := servePoint{load: load, rate: load * cap}
		for e := 0; e < cfg.Epochs; e++ {
			seed++
			p.seeds = append(p.seeds, seed)
		}
		pts[i] = p
	}
	return pts
}

// RunServe executes the load sweep on cfg.Workers goroutines and
// returns the per-point tail-latency table with the detected knee.
// Progress rows stream to w in canonical load order (nil = silent).
func RunServe(ctx context.Context, cfg ServeConfig, w io.Writer) (*ServeResult, error) {
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	pts := enumerateServe(cfg)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pts) {
		workers = len(pts)
	}
	if workers < 1 {
		workers = 1
	}

	type pointOut struct {
		row ServeRow
		err error
	}
	outs := make([]pointOut, len(pts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pts) || ctx.Err() != nil {
					return
				}
				row, err := measureServePoint(ctx, cfg, pts[i])
				outs[i] = pointOut{row: row, err: err}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &ServeResult{
		Mode:        serve.OpenLoop,
		Arrival:     string(arrivalKind(cfg.Arrival)),
		CapacityRps: cfg.Capacity(),
		DurationSec: cfg.Duration.Seconds(),
		Epochs:      cfg.Epochs,
		Seed:        cfg.Seed,
	}
	for i := range pts {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		row := outs[i].row
		res.Rows = append(res.Rows, row)
		if w != nil {
			fmt.Fprintf(w, "ρ=%-5.2f %9.0f req/s  p50 %8.3f ms  p99 %8.3f ms [%.3f, %.3f]  drop %d\n",
				row.Load, row.RateRps, row.P50Ms, row.P99Ms, row.P99LoMs, row.P99HiMs, row.Dropped)
		}
	}
	if len(res.Rows) > 1 {
		base := res.Rows[0].P99Ms
		for _, row := range res.Rows[1:] {
			if base > 0 && row.P99Ms > cfg.KneeFactor*base {
				res.KneeLoad = row.Load
				break
			}
		}
	}
	if len(cfg.Server.Stalls) > 0 && len(pts) > 0 {
		top := pts[len(pts)-1]
		chk, err := serve.CheckCoordinatedOmission(serve.Options{
			Arrival:     withRate(cfg.Arrival, top.rate),
			Server:      cfg.Server,
			Duration:    cfg.Duration,
			MaxRequests: cfg.MaxRequests,
			Seed:        top.seeds[0],
		})
		if err != nil {
			return nil, err
		}
		res.OmissionRatio = chk.Ratio
	}
	return res, nil
}

func arrivalKind(a serve.ArrivalConfig) serve.ArrivalKind {
	if a.Kind == "" {
		return serve.Poisson
	}
	return a.Kind
}

func withRate(a serve.ArrivalConfig, rate float64) serve.ArrivalConfig {
	a.Rate = rate
	return a
}

// measureServePoint runs one load point: Epochs seeded epochs collected
// through bench's fixed-count controller (per-epoch p99 is the bench
// observable; Rule 4's loss accounting and stop verdict ride along),
// with every per-request latency merged into one histogram for the
// rank-based tail CIs.
func measureServePoint(ctx context.Context, cfg ServeConfig, pt servePoint) (ServeRow, error) {
	row := ServeRow{Load: pt.load, RateRps: pt.rate}
	merged := &stats.LogHistogram{}
	epochHist := &stats.LogHistogram{} // reused across epochs: zero alloc growth
	epoch := 0
	benchRes, err := bench.RunErrCtx(ctx, bench.Plan{
		MinSamples: cfg.Epochs,
		MaxSamples: cfg.Epochs,
		Confidence: cfg.Confidence,
		Workers:    1, // epochs are serial inside a point: merge order is canonical
	}, func() (float64, error) {
		r, err := serve.Run(serve.Options{
			Arrival:     withRate(cfg.Arrival, pt.rate),
			Server:      cfg.Server,
			Duration:    cfg.Duration,
			MaxRequests: cfg.MaxRequests,
			Seed:        pt.seeds[epoch%len(pt.seeds)],
			Mode:        serve.OpenLoop,
			Hist:        epochHist,
		})
		if err != nil {
			return 0, err
		}
		epoch++
		row.Offered += r.Offered
		row.Completed += r.Completed
		row.Dropped += r.Dropped
		row.Batches += r.Batches
		merged.Merge(r.Hist)
		if ms := 1e3 * float64(r.MaxLatency.Seconds()); ms > row.MaxMs {
			row.MaxMs = ms
		}
		row.ThroughputRps += r.Throughput
		return 1e3 * r.Hist.Quantile(0.99), nil
	})
	if err != nil {
		return row, fmt.Errorf("suite: load point ρ=%.2f: %w", pt.load, err)
	}
	row.Stop = benchRes.Stop
	if row.Batches > 0 {
		row.MeanBatch = float64(row.Completed) / float64(row.Batches)
	}
	row.ThroughputRps /= float64(epoch)

	row.P50Ms = 1e3 * merged.Quantile(0.5)
	row.P99Ms = 1e3 * merged.Quantile(0.99)
	row.P999Ms = 1e3 * merged.Quantile(0.999)
	if iv, err := ci.QuantileCIHist(merged, 0.5, cfg.Confidence); err == nil {
		row.P50LoMs, row.P50HiMs = 1e3*iv.Lo, 1e3*iv.Hi
	}
	if iv, err := ci.QuantileCIHist(merged, 0.99, cfg.Confidence); err == nil {
		row.P99LoMs, row.P99HiMs = 1e3*iv.Lo, 1e3*iv.Hi
	}
	return row, nil
}

// WriteJSON renders the sweep as deterministic indented JSON — the
// merged.json artifact whose bytes must not depend on the worker count.
func (r *ServeResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteReport renders the human-readable sweep table with the knee and
// omission diagnostics.
func (r *ServeResult) WriteReport(w io.Writer) error {
	tbl := &report.Table{
		Title: fmt.Sprintf("open-loop %s load sweep (capacity %.0f req/s, %d × %.0fs epochs per point)",
			r.Arrival, r.CapacityRps, r.Epochs, r.DurationSec),
		Headers: []string{
			"ρ", "offered req/s", "tput req/s", "p50 (ms)", "p99 (ms)", "p99 CI", "p999 (ms)", "drop", "batch",
		},
	}
	for _, row := range r.Rows {
		tbl.AddRow(
			fmt.Sprintf("%.2f", row.Load),
			fmt.Sprintf("%.0f", row.RateRps),
			fmt.Sprintf("%.0f", row.ThroughputRps),
			fmt.Sprintf("%.3f", row.P50Ms),
			fmt.Sprintf("%.3f", row.P99Ms),
			fmt.Sprintf("[%.3f, %.3f]", row.P99LoMs, row.P99HiMs),
			fmt.Sprintf("%.3f", row.P999Ms),
			row.Dropped,
			fmt.Sprintf("%.1f", row.MeanBatch),
		)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	switch {
	case r.KneeLoad > 0:
		fmt.Fprintf(w, "\nlatency knee at ρ = %.2f: p99 is %.1f× the base-load p99 there"+
			" (report the curve, not one point — Rule 2).\n", r.KneeLoad, kneeRatio(r))
	case len(r.Rows) > 1:
		fmt.Fprintln(w, "\nno latency knee inside the swept range.")
	}
	if r.OmissionRatio > 0 {
		fmt.Fprintf(w, "coordinated-omission audit at top load: open-loop p99 is %.1f× the closed-loop"+
			" p99 on the identical stall schedule.\n", r.OmissionRatio)
	}
	return nil
}

// kneeRatio is the measured p99 blow-up at the detected knee relative
// to the base load.
func kneeRatio(r *ServeResult) float64 {
	if len(r.Rows) == 0 || r.Rows[0].P99Ms == 0 {
		return math.NaN()
	}
	for _, row := range r.Rows {
		if row.Load == r.KneeLoad {
			return row.P99Ms / r.Rows[0].P99Ms
		}
	}
	return math.NaN()
}
