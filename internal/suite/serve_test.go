package suite

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

func quickServeConfig() ServeConfig {
	return ServeConfig{
		Arrival: serve.ArrivalConfig{Kind: serve.Poisson},
		Server: serve.ServerConfig{
			Servers: 2,
			Service: serve.ServiceConfig{Mean: 2 * time.Millisecond, Sigma: 0.5},
		},
		Loads:    []float64{0.2, 0.5, 0.9},
		Duration: time.Second,
		Seed:     77,
	}
}

func TestRunServeWorkerInvariance(t *testing.T) {
	// The acceptance bar of the sweep: the JSON artifact must be
	// byte-identical whether one worker or GOMAXPROCS workers measured
	// the load points (Rule 9 — parallelism is an execution detail).
	cfg := quickServeConfig()
	encode := func(workers int) string {
		c := cfg
		c.Workers = workers
		res, err := RunServe(context.Background(), c, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatalf("workers=%d: encode: %v", workers, err)
		}
		return buf.String()
	}
	serial := encode(1)
	parallel := encode(runtime.GOMAXPROCS(0))
	if serial != parallel {
		t.Fatalf("sweep JSON differs between worker counts:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

func TestRunServeKneeDetection(t *testing.T) {
	// Ramping into saturation must knee: p99 at ρ≈1 explodes relative to
	// ρ=0.1 (open-loop queueing), and the detector reports the load.
	cfg := quickServeConfig()
	cfg.Loads = []float64{0.1, 0.5, 0.98}
	cfg.Duration = 2 * time.Second
	res, err := RunServe(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Rows[2].P99Ms <= res.Rows[0].P99Ms {
		t.Fatalf("p99 did not grow with load: %.3f ms at ρ=0.1 vs %.3f ms at ρ=0.98",
			res.Rows[0].P99Ms, res.Rows[2].P99Ms)
	}
	if res.KneeLoad != 0.98 {
		t.Fatalf("knee at ρ=%.2f, want 0.98 (p99 ramp: %.3f / %.3f / %.3f ms)",
			res.KneeLoad, res.Rows[0].P99Ms, res.Rows[1].P99Ms, res.Rows[2].P99Ms)
	}
	for _, row := range res.Rows {
		if row.P99LoMs > row.P99Ms || row.P99HiMs < row.P99Ms {
			t.Errorf("ρ=%.2f: p99 %.3f outside its own CI [%.3f, %.3f]",
				row.Load, row.P99Ms, row.P99LoMs, row.P99HiMs)
		}
		if row.Offered != row.Completed+row.Dropped {
			t.Errorf("ρ=%.2f: conservation violated: %+v", row.Load, row)
		}
	}
}

func TestRunServeOmissionAudit(t *testing.T) {
	// A stall-carrying config triggers the coordinated-omission audit at
	// the top load and the ratio lands in the result and the report.
	cfg := quickServeConfig()
	cfg.Loads = []float64{0.3}
	cfg.Server.Service.Sigma = 0
	cfg.Server.Stalls = []serve.Stall{{At: 200 * time.Millisecond, Dur: 300 * time.Millisecond}}
	res, err := RunServe(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OmissionRatio <= 1 {
		t.Fatalf("omission ratio %.2f, want > 1 under an injected stall", res.OmissionRatio)
	}
	var buf bytes.Buffer
	if err := res.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "coordinated-omission audit") {
		t.Fatalf("report omits the omission audit:\n%s", buf.String())
	}
}

func TestRunServeReport(t *testing.T) {
	res, err := RunServe(context.Background(), quickServeConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"load sweep", "p99 (ms)", "p99 CI"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestServeCapacity(t *testing.T) {
	c := ServeConfig{Server: serve.ServerConfig{
		Servers:  4,
		BatchMax: 8,
		Service:  serve.ServiceConfig{Mean: 7 * time.Millisecond, PerItem: time.Millisecond},
	}}
	// 4 servers × 8 per batch / (7 ms + 7×1 ms) = 32 / 14 ms ≈ 2285.7/s.
	got := c.Capacity()
	want := 32.0 / 0.014
	if diff := got - want; diff > 1 || diff < -1 {
		t.Fatalf("capacity %.1f, want %.1f", got, want)
	}
}
