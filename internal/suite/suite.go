// Package suite is a SKaMPI-style collective microbenchmark suite built
// on the library — §6 positions LibSciBench as "a building block for a
// new benchmark suite", and this package is that suite: it sweeps
// collectives × process counts × payload sizes on a (simulated) machine,
// measures each configuration with adaptive CI-driven sampling, applies
// delay-window synchronization, summarizes soundly (median + rank CI,
// maximum across processes), and fits the LogP-style model to each
// collective's scaling.
package suite

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Telemetry: worker-pool behaviour, observable without perturbing the
// sweep (internal/telemetry never touches reports or RNG streams). The
// occupancy histogram records how many workers were busy at the instant
// each configuration was claimed — the pool's achieved parallelism.
var (
	telWorkersActive = telemetry.Default().Gauge("suite.workers_active")
	telOccupancy     = telemetry.Default().Histogram("suite.occupancy")
	telConfigs       = telemetry.Default().Counter("suite.configs")
	telConfigUs      = telemetry.Default().Histogram("suite.config_us")
)

// Collective names supported by the suite.
const (
	Reduce    = "reduce"
	Allreduce = "allreduce"
	Bcast     = "bcast"
	Barrier   = "barrier"
	Gather    = "gather"
	Scatter   = "scatter"
	Allgather = "allgather"
	Alltoall  = "alltoall"
)

// AllCollectives lists every supported collective in canonical order.
var AllCollectives = []string{
	Reduce, Allreduce, Bcast, Barrier, Gather, Scatter, Allgather, Alltoall,
}

// Config parametrizes a suite run.
type Config struct {
	Cluster     cluster.Config
	Collectives []string // subset of AllCollectives (nil = all)
	Ranks       []int    // process counts (nil = 2,4,8,16,32)
	Bytes       []int    // payload sizes (nil = 8, 1024)
	MinRuns     int      // minimum repetitions per configuration (default 20)
	MaxRuns     int      // adaptive budget (default 400)
	RelErr      float64  // target relative CI width (default 0.05)
	Confidence  float64  // CI level (default 0.95)
	Seed        uint64
	// Workers bounds how many configurations are measured concurrently.
	// Zero selects GOMAXPROCS; 1 is the serial path. Every configuration's
	// seed is assigned from the canonical sweep order before fan-out, so
	// the Result is bit-identical for every worker count — parallelism
	// buys wall-clock time, never reproducibility (Rule 9).
	Workers int
	// Resilience, when non-nil, arms bench's fault-tolerant collection
	// loop for every configuration: retries, the fault-suspect value
	// ceiling (in µs here, matching the measured unit), and graceful
	// degradation. Rows then carry the per-configuration loss accounting.
	Resilience *bench.Resilience
	// Shards, when > 0, splits the canonical sweep into that many
	// contiguous shards (shard.Partition over the canonical job order)
	// and runs only shard Shard (0-based). Seeds are assigned from the
	// FULL canonical enumeration before the filter, so each shard's rows
	// are bit-identical to the corresponding rows of the unsharded sweep
	// and the union over all shards reproduces it exactly (Rule 9 —
	// partitioning is an execution detail, not a different experiment).
	// Scaling models are fitted only for groups wholly inside the shard;
	// cross-shard model fits belong to the merge step.
	Shard  int
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Collectives == nil {
		c.Collectives = AllCollectives
	}
	if c.Ranks == nil {
		c.Ranks = []int{2, 4, 8, 16, 32}
	}
	if c.Bytes == nil {
		c.Bytes = []int{8, 1024}
	}
	if c.MinRuns < 5 {
		c.MinRuns = 20
	}
	if c.MaxRuns < c.MinRuns {
		c.MaxRuns = 400
	}
	if c.RelErr <= 0 {
		c.RelErr = 0.05
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	return c
}

// Row is one measured configuration.
type Row struct {
	Collective string
	Ranks      int
	Bytes      int
	N          int     // repetitions actually used
	MedianUs   float64 // median of max-across-ranks, µs
	CILoUs     float64
	CIHiUs     float64
	P99Us      float64
	MaxSkewUs  float64 // residual delay-window start skew
	Converged  bool    // CI target reached within budget
	// Stop is bench's verdict on how collection for this configuration
	// ended (converged, budget exhausted, degraded by loss, interrupted);
	// SamplesLost counts observation slots abandoned by the resilient
	// loop. Rule 4: a degraded row is reported, not hidden.
	Stop        bench.StopReason
	SamplesLost int
}

// Result is a complete suite run.
type Result struct {
	Config Config
	Rows   []Row
	// Models maps collective/bytes to the fitted LogP-style scaling
	// model over the measured process counts.
	Models map[string]model.CollectiveModel
	// Interrupted reports that the sweep was cancelled mid-run: Rows
	// holds every configuration completed before the interruption and
	// the report labels the result partial.
	Interrupted bool
}

// TotalLost sums the per-row resilient-loop loss accounting.
func (r *Result) TotalLost() int {
	n := 0
	for _, row := range r.Rows {
		n += row.SamplesLost
	}
	return n
}

// Errors.
var (
	ErrUnknownCollective = errors.New("suite: unknown collective")
	ErrBadShard          = errors.New("suite: invalid shard selection")
)

// job is one configuration of the sweep with its precomputed seed. The
// seed table is built from the canonical enumeration order before any
// fan-out, reproducing exactly the seeds the historical serial seed++
// walk assigned — which is what makes the parallel sweep bit-identical
// to the serial one.
type job struct {
	coll  string
	bytes int
	ranks int
	seed  uint64
	group int // index into the (collective, bytes) group list
}

// jobGroup collects the job indices of one (collective, bytes) model
// group in rank order.
type jobGroup struct {
	coll  string
	bytes int
	jobs  []int
}

// enumerate builds the canonical job list and its model groups.
func enumerate(cfg Config) ([]job, []jobGroup) {
	var jobs []job
	var groups []jobGroup
	seed := cfg.Seed
	for _, coll := range cfg.Collectives {
		for _, bytes := range cfg.Bytes {
			if coll == Barrier && bytes != cfg.Bytes[0] {
				continue // barriers carry no payload; measure once
			}
			g := jobGroup{coll: coll, bytes: bytes}
			for _, p := range cfg.Ranks {
				seed++
				g.jobs = append(g.jobs, len(jobs))
				jobs = append(jobs, job{
					coll: coll, bytes: bytes, ranks: p,
					seed: seed, group: len(groups),
				})
			}
			groups = append(groups, g)
		}
	}
	return jobs, groups
}

// jobOut is one job's outcome, written by the worker that ran it.
type jobOut struct {
	row  Row
	done bool  // row is valid (includes interrupted rows, per Rule 4)
	err  error // hard (non-cancellation) measurement error
}

// Run executes the suite under ctx on cfg.Workers goroutines. Progress
// rows are streamed to w in canonical sweep order as they complete
// (out-of-order completions are buffered; pass nil to collect silently).
// Cancellation — Ctrl-C, a wall-clock budget — checkpoints the sweep
// instead of discarding it: the partial Result holds every completed
// configuration, is marked Interrupted, and is returned with a nil
// error. For a fixed Config the Result is bit-identical for every
// worker count.
func Run(ctx context.Context, cfg Config, w io.Writer) (*Result, error) {
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	for _, c := range cfg.Collectives {
		if !known(c) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownCollective, c)
		}
	}
	jobs, groups := enumerate(cfg)
	if cfg.Shards > 0 {
		var err error
		if jobs, groups, err = shardSlice(cfg, jobs, groups); err != nil {
			return nil, err
		}
	} else if cfg.Shard != 0 {
		return nil, fmt.Errorf("%w: Shard %d set without Shards", ErrBadShard, cfg.Shard)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	sctx, sweepSpan := telemetry.StartSpan(ctx, "sweep",
		fmt.Sprintf("%d configurations, %d workers", len(jobs), workers))
	defer sweepSpan.End()

	// runCtx aborts in-flight configurations when a sibling hits a hard
	// error; outer-ctx cancellation keeps its distinct meaning (clean
	// interruption with checkpointed rows).
	runCtx, cancelRun := context.WithCancel(sctx)
	defer cancelRun()

	outs := make([]jobOut, len(jobs))
	var next atomic.Int64 // job claim counter: in claim order == canonical order
	var stopped atomic.Bool
	completions := make(chan int, len(jobs))
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() || runCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				telOccupancy.Observe(float64(telWorkersActive.Add(1)))
				jctx, span := telemetry.StartSpan(runCtx, "config",
					fmt.Sprintf("%s p=%d %dB", j.coll, j.ranks, j.bytes))
				start := time.Now()
				row, err := measure(jctx, cfg, j.coll, j.ranks, j.bytes, j.seed)
				span.End()
				telConfigUs.Observe(telemetry.Us(time.Since(start)))
				telWorkersActive.Add(-1)
				telConfigs.Inc()
				switch {
				case err != nil && ctx.Err() != nil:
					// Cancelled before this configuration retained an
					// analyzable sample: the completed rows stand.
					stopped.Store(true)
				case err != nil && runCtx.Err() != nil:
					// Aborted by a sibling's hard error; that error wins.
				case err != nil:
					outs[i].err = err
					stopped.Store(true)
					cancelRun()
				default:
					outs[i] = jobOut{row: row, done: true}
					if row.Stop == bench.StopInterrupted {
						stopped.Store(true)
					}
				}
				completions <- i
			}
		}()
	}
	go func() {
		wg.Wait()
		close(completions)
	}()

	// Ordered progress streaming: a line is printed only once every
	// earlier job has completed, so w sees canonical sweep order however
	// the pool interleaves.
	finished := make([]bool, len(jobs))
	nextFlush := 0
	flush := func(gaps bool) {
		for nextFlush < len(jobs) {
			if !finished[nextFlush] {
				if !gaps {
					return
				}
				nextFlush++
				continue
			}
			if o := &outs[nextFlush]; o.done && w != nil {
				row := o.row
				fmt.Fprintf(w, "%-10s p=%-3d %6dB  n=%-4d median %.4g µs [%.4g, %.4g]%s\n",
					row.Collective, row.Ranks, row.Bytes, row.N, row.MedianUs, row.CILoUs, row.CIHiUs, rowFlag(row))
			}
			nextFlush++
		}
	}
	for i := range completions {
		finished[i] = true
		flush(false)
	}
	flush(true) // the pool has drained: flush past never-claimed gaps

	// Reassemble in canonical order. A missing job (never claimed, or
	// cancelled before retaining a sample) marks the sweep interrupted;
	// rows themselves are never reordered relative to the serial walk.
	res := &Result{Config: cfg, Models: map[string]model.CollectiveModel{}}
	var firstErr error
	for i := range jobs {
		o := &outs[i]
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		if o.done {
			res.Rows = append(res.Rows, o.row)
			if o.row.Stop == bench.StopInterrupted {
				res.Interrupted = true
			}
		} else {
			res.Interrupted = true
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	// Fit scaling models for every group whose sweep completed cleanly,
	// exactly the groups the serial walk fitted.
	for gi, g := range groups {
		ps := make([]int, 0, len(g.jobs))
		medians := make([]float64, 0, len(g.jobs))
		clean := true
		for _, ji := range g.jobs {
			o := &outs[ji]
			if !o.done || o.row.Stop == bench.StopInterrupted {
				clean = false
				break
			}
			ps = append(ps, o.row.Ranks)
			medians = append(medians, o.row.MedianUs*1e-6)
		}
		if clean && len(ps) >= 4 {
			if m, err := model.FitCollective(ps, medians); err == nil {
				res.Models[fmt.Sprintf("%s/%dB", groups[gi].coll, groups[gi].bytes)] = m
			}
		}
	}
	return res, nil
}

// shardSlice restricts the canonical job list to the configured shard.
// It runs AFTER enumerate assigned every job its canonical seed, so the
// shard measures exactly what the full sweep would have measured for
// the same configurations. Model groups straddling the shard boundary
// are dropped: fitting them needs the neighbouring shards' rows.
func shardSlice(cfg Config, jobs []job, groups []jobGroup) ([]job, []jobGroup, error) {
	if cfg.Shard < 0 || cfg.Shard >= cfg.Shards || cfg.Shards > len(jobs) {
		return nil, nil, fmt.Errorf("%w: shard %d of %d over %d configurations",
			ErrBadShard, cfg.Shard, cfg.Shards, len(jobs))
	}
	r := shard.Partition(len(jobs), cfg.Shards)[cfg.Shard]
	lo, hi := r[0], r[1]
	var kept []jobGroup
	for _, g := range groups {
		inside := jobGroup{coll: g.coll, bytes: g.bytes}
		for _, ji := range g.jobs {
			if ji >= lo && ji < hi {
				inside.jobs = append(inside.jobs, ji-lo)
			}
		}
		if len(inside.jobs) == len(g.jobs) {
			kept = append(kept, inside)
		}
	}
	sliced := jobs[lo:hi]
	for i := range sliced {
		sliced[i].group = -1
	}
	for gi, g := range kept {
		for _, ji := range g.jobs {
			sliced[ji].group = gi
		}
	}
	return sliced, kept, nil
}

// rowFlag annotates a progress line with anything that disqualifies the
// row as a clean measurement.
func rowFlag(r Row) string {
	switch {
	case r.Stop == bench.StopDegraded:
		return fmt.Sprintf("  DEGRADED lost=%d", r.SamplesLost)
	case r.Stop == bench.StopInterrupted:
		return "  INTERRUPTED"
	case r.SamplesLost > 0:
		return fmt.Sprintf("  lost=%d", r.SamplesLost)
	}
	return ""
}

func known(c string) bool {
	for _, k := range AllCollectives {
		if c == k {
			return true
		}
	}
	return false
}

func addRow(tbl *report.Table, r Row) {
	tbl.AddRow(r.Collective, r.Ranks, r.Bytes, r.N,
		fmt.Sprintf("%.4g", r.MedianUs),
		fmt.Sprintf("[%.4g, %.4g]", r.CILoUs, r.CIHiUs),
		fmt.Sprintf("%.4g", r.P99Us),
		fmt.Sprintf("%.3g", r.MaxSkewUs),
		r.SamplesLost,
		stopLabel(r.Stop))
}

// stopLabel compresses bench's stop reasons into table-width words.
func stopLabel(s bench.StopReason) string {
	switch s {
	case bench.StopConverged:
		return "converged"
	case bench.StopMaxSamples:
		return "budget"
	case bench.StopDegraded:
		return "DEGRADED"
	case bench.StopInterrupted:
		return "INTERRUPTED"
	case bench.StopFixed:
		return "fixed"
	}
	return string(s)
}

// measure runs one configuration through bench's measurement controller:
// adaptive CI-driven sampling, optional resilient collection, and clean
// checkpointing on cancellation.
func measure(ctx context.Context, cfg Config, coll string, ranks, bytes int, seed uint64) (Row, error) {
	m, err := cluster.New(cfg.Cluster, ranks, seed)
	if err != nil {
		return Row{}, err
	}
	row := Row{Collective: coll, Ranks: ranks, Bytes: bytes}

	// Synchronize once per configuration (the skew is part of what a
	// real harness pays; Rule 10 requires reporting it).
	sync := m.DelayWindowSync(time.Millisecond, 3)
	row.MaxSkewUs = float64(sync.MaxSkew) / float64(time.Microsecond)

	run := func() (float64, error) {
		var cr cluster.CollectiveResult
		switch coll {
		case Reduce:
			cr = m.Reduce(bytes, sync.Skew)
		case Allreduce:
			cr = m.Allreduce(bytes, sync.Skew)
		case Bcast:
			cr = m.Bcast(bytes, sync.Skew)
		case Barrier:
			cr = m.Barrier(sync.Skew)
		case Gather:
			cr = m.Gather(bytes, sync.Skew)
		case Scatter:
			cr = m.Scatter(bytes, sync.Skew)
		case Allgather:
			cr = m.Allgather(bytes, sync.Skew)
		case Alltoall:
			cr = m.Alltoall(bytes, sync.Skew)
		}
		m.Advance(cr.Max() + 10*time.Microsecond)
		return float64(cr.Max()) / float64(time.Microsecond), nil
	}

	res, err := bench.RunErrCtx(ctx, bench.Plan{
		MinSamples: cfg.MinRuns,
		MaxSamples: cfg.MaxRuns,
		RelErr:     cfg.RelErr,
		Confidence: cfg.Confidence,
		BatchSize:  10,
		Resilience: cfg.Resilience,
		// The suite parallelizes across configurations; keep the
		// per-configuration analysis serial to avoid oversubscription.
		Workers: 1,
	}, run)
	if err != nil {
		return Row{}, err
	}
	row.N = len(res.Raw)
	smp := stats.NewSample(res.Raw)
	row.MedianUs = smp.Quantile(0.5)
	row.P99Us = smp.Quantile(0.99)
	row.CILoUs = res.MedianCI.Lo
	row.CIHiUs = res.MedianCI.Hi
	row.Converged = res.Stop == bench.StopConverged
	row.Stop = res.Stop
	row.SamplesLost = res.SamplesLost
	return row, nil
}

// WriteReport renders the complete suite result: the measurement table
// sorted canonically plus the fitted scaling models.
func (r *Result) WriteReport(w io.Writer) error {
	rows := append([]Row(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Collective != rows[j].Collective {
			return rows[i].Collective < rows[j].Collective
		}
		if rows[i].Bytes != rows[j].Bytes {
			return rows[i].Bytes < rows[j].Bytes
		}
		return rows[i].Ranks < rows[j].Ranks
	})
	title := "collective microbenchmark suite on " + r.Config.Cluster.Name
	if r.Config.Shards > 0 {
		title += fmt.Sprintf(" (shard %d/%d of the canonical sweep)", r.Config.Shard, r.Config.Shards)
	}
	if r.Interrupted {
		title += " (PARTIAL: sweep interrupted)"
	}
	tbl := &report.Table{
		Title: title,
		Headers: []string{
			"collective", "p", "bytes", "n", "median (µs)", "95% CI", "p99 (µs)", "sync skew (µs)", "lost", "stop",
		},
	}
	for _, row := range rows {
		addRow(tbl, row)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	if r.Interrupted {
		fmt.Fprintln(w, "\nsweep interrupted before completion: rows above are the configurations"+
			" that finished; unmeasured configurations are absent, not zero (Rule 2).")
	}
	if lost := r.TotalLost(); lost > 0 {
		fmt.Fprintf(w, "\nresilient collection dropped %d observation slot(s) across the sweep;"+
			" per-row losses are in the table (Rule 4: losses are data).\n", lost)
	}
	if len(r.Models) > 0 {
		fmt.Fprintln(w, "\nfitted scaling models (T in seconds):")
		keys := make([]string, 0, len(r.Models))
		for k := range r.Models {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-16s %s\n", k, r.Models[k])
		}
	}
	return nil
}
