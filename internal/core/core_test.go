package core

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/rules"
	"repro/internal/stats"
)

func testMeta() Metadata {
	return Metadata{
		Name: "latency",
		Unit: "µs",
		Kind: stats.Cost,
		Env: rules.Environment{
			Processor:        "simulated Xeon",
			Memory:           "64 GiB",
			Network:          "simulated Aries",
			Compiler:         "gc (Go)",
			RuntimeLibs:      "Go runtime",
			Filesystem:       "not used",
			InputAndCode:     "64 B ping-pong",
			MeasurementSetup: "single-event timing",
			CodeURL:          "https://example.org/repo",
		},
		Factors: []rules.Factor{{Name: "system", Levels: []string{"dora", "pilatus"}}},
	}
}

func twoSystemExperiment(seed uint64) *Experiment {
	rngA := rand.New(rand.NewPCG(seed, 1))
	rngB := rand.New(rand.NewPCG(seed, 2))
	return &Experiment{
		Meta: testMeta(),
		Plan: bench.Plan{MinSamples: 400},
		Configs: []Configuration{
			{Label: "dora", Measure: func() float64 {
				return 1.55 + 0.22*math.Exp(0.25*rngA.NormFloat64())
			}},
			{Label: "pilatus", Measure: func() float64 {
				return 1.36 + 0.52*math.Exp(0.5*rngB.NormFloat64())
			}},
		},
	}
}

func TestExperimentRunAndGet(t *testing.T) {
	res, err := twoSystemExperiment(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Configs) != 2 {
		t.Fatalf("configs = %d", len(res.Configs))
	}
	d, err := res.Get("dora")
	if err != nil {
		t.Fatal(err)
	}
	if d.Result.Summary.N != 400 {
		t.Errorf("n = %d", d.Result.Summary.N)
	}
	if _, err := res.Get("nonesuch"); err == nil {
		t.Error("unknown label should error")
	}
	labels := res.SortedLabels()
	if len(labels) != 2 || labels[0] != "dora" {
		t.Errorf("labels = %v", labels)
	}
}

func TestEmptyExperiment(t *testing.T) {
	e := &Experiment{Meta: testMeta()}
	if _, err := e.Run(); err != ErrNoConfigs {
		t.Errorf("err = %v", err)
	}
}

func TestCompareDetectsMedianShift(t *testing.T) {
	res, err := twoSystemExperiment(2).Run()
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := res.Compare("dora", "pilatus", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Dora's median ≈ 1.77; Pilatus's ≈ 1.88 — different at n=400.
	if !cmp.MedianDiffers {
		t.Errorf("median difference not detected: %v", cmp.MedianTest)
	}
	if cmp.MedianABMinusB >= 0 {
		t.Errorf("dora should have the lower median, diff = %g", cmp.MedianABMinusB)
	}
	if cmp.EffectSize == 0 {
		t.Error("effect size not computed")
	}
	if _, err := res.Compare("dora", "nope", 0.05); err == nil {
		t.Error("unknown label should error")
	}
}

func TestQuantileComparison(t *testing.T) {
	res, err := twoSystemExperiment(3).Run()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := res.QuantileComparison("dora", "pilatus", []float64{0.1, 0.5, 0.9}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// At the median Pilatus is slower (difference > 0 with dora as base).
	if pts[1].Difference <= 0 {
		t.Errorf("median difference = %g, want > 0", pts[1].Difference)
	}
}

func TestRulesReportAndAudit(t *testing.T) {
	res, err := twoSystemExperiment(4).Run()
	if err != nil {
		t.Fatal(err)
	}
	extra := rules.Report{
		Plots: []rules.Plot{{Name: "densities", ShowsVariation: true}},
		Comparisons: []rules.Comparison{
			{Claim: "dora faster at median", Method: rules.KruskalWallis},
		},
		BoundsModels: []string{"wire-latency floor"},
	}
	findings, compliance := res.Audit(extra)
	if len(findings) == 0 {
		t.Fatal("no findings")
	}
	if compliance.Passed < 11 {
		t.Errorf("compliance %d/12; findings:", compliance.Passed)
		for _, f := range findings {
			if f.Severity != rules.Pass {
				t.Logf("  %s", f)
			}
		}
	}
	rep := res.RulesReport(extra)
	if rep.Deterministic {
		t.Error("noisy experiment flagged deterministic")
	}
	if !rep.ReportsCI || rep.CILevel != 0.95 {
		t.Errorf("CI metadata wrong: %v %g", rep.ReportsCI, rep.CILevel)
	}
	// The skewed latency data should steer the summary to the median.
	found := false
	for _, s := range rep.Summaries {
		if s.Method == rules.MedianSummary {
			found = true
		}
	}
	if !found {
		t.Error("skewed data should be summarized by the median")
	}
}

func TestWriteSummaryTable(t *testing.T) {
	res, err := twoSystemExperiment(5).Run()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteSummaryTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"latency", "dora", "pilatus", "median", "CoV"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}

func TestDeterministicExperimentAudits(t *testing.T) {
	e := &Experiment{
		Meta: testMeta(),
		Plan: bench.Plan{MinSamples: 10},
		Configs: []Configuration{
			{Label: "const", Measure: func() float64 { return 3 }},
		},
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.RulesReport(rules.Report{})
	if !rep.Deterministic {
		t.Error("constant data should be reported deterministic")
	}
	// Deterministic cost → arithmetic mean summary.
	if rep.Summaries[0].Method != rules.ArithmeticMean {
		t.Errorf("method = %s", rep.Summaries[0].Method)
	}
}

func TestNotebookRoundTrip(t *testing.T) {
	res, err := twoSystemExperiment(6).Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.Name != res.Meta.Name || len(back.Configs) != len(res.Configs) {
		t.Fatalf("metadata lost: %+v", back.Meta)
	}
	for i, c := range back.Configs {
		orig := res.Configs[i]
		if c.Label != orig.Label || len(c.Result.Raw) != len(orig.Result.Raw) {
			t.Fatalf("config %d lost raw data", i)
		}
		if c.Result.Summary.Median != orig.Result.Summary.Median {
			t.Fatalf("config %d summary drifted", i)
		}
	}
	// Re-analysis of loaded raw data matches the stored summary.
	re, err := bench.Analyze(back.Configs[0].Result.Raw, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(re.Summary.Mean-back.Configs[0].Result.Summary.Mean) > 1e-12 {
		t.Error("re-analysis disagrees with the stored summary")
	}
}

func TestNotebookLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON should error")
	}
	if _, err := Load(strings.NewReader(`{"version":99,"results":{"Configs":[{}]}}`)); err == nil {
		t.Error("wrong version should error")
	}
	if _, err := Load(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("empty notebook should error")
	}
}
