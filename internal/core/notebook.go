package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file implements the "lab notebook": serializing analyzed results
// (including every raw observation) to JSON and back, the data-release
// practice Rule 9 asks for ("Ideally, researchers release the source
// code used for the experiment or at least the input data").

// notebookVersion guards the serialization format.
const notebookVersion = 1

type notebookFile struct {
	Version int      `json:"version"`
	Results *Results `json:"results"`
}

// Save writes the results (metadata, plan, per-configuration summaries
// and raw observations) as versioned JSON.
func (r *Results) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(notebookFile{Version: notebookVersion, Results: r})
}

// Load reads results previously written by Save.
func Load(rd io.Reader) (*Results, error) {
	var f notebookFile
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("core: parsing notebook: %w", err)
	}
	if f.Version != notebookVersion {
		return nil, fmt.Errorf("core: notebook version %d unsupported (want %d)",
			f.Version, notebookVersion)
	}
	if f.Results == nil || len(f.Results.Configs) == 0 {
		return nil, fmt.Errorf("core: notebook holds no results")
	}
	return f.Results, nil
}
