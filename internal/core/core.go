// Package core is the paper's contribution assembled into a usable
// pipeline: design an experiment (documented environment, factors and
// levels — Rule 9), measure it (package bench: warmup, adaptive
// sampling, outlier policy), analyze it (packages stats/ci/htest/qreg:
// correct means, CIs of mean and median, normality diagnostics,
// significance tests), report it (package report: tables, densities,
// boxes, violins, CSV/JSON), and audit the result against the twelve
// rules (package rules).
package core

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/bench"
	"repro/internal/htest"
	"repro/internal/qreg"
	"repro/internal/report"
	"repro/internal/rules"
	"repro/internal/stats"
)

// Metadata documents an experiment per Rule 9. Every field that applies
// should be filled; the audit flags gaps.
type Metadata struct {
	Name        string
	Description string
	Unit        string     // unit of the measured value, e.g. "µs" (Rule: report units unambiguously)
	Kind        stats.Kind // cost, rate, or ratio — selects the correct mean
	Env         rules.Environment
	Factors     []rules.Factor
	Parallel    *rules.ParallelTiming
	Seed        uint64
}

// Configuration is one factor-level combination with its measurement
// closure.
type Configuration struct {
	Label   string
	Measure func() float64
}

// Experiment is a designed measurement campaign over one or more
// configurations.
type Experiment struct {
	Meta    Metadata
	Plan    bench.Plan
	Configs []Configuration
}

// ConfigResult pairs a configuration with its analyzed measurements.
type ConfigResult struct {
	Label  string
	Result bench.Result
}

// Results is the analyzed outcome of an experiment run.
type Results struct {
	Meta    Metadata
	Plan    bench.Plan
	Configs []ConfigResult
}

// Errors.
var (
	ErrNoConfigs = errors.New("core: experiment has no configurations")
	ErrNotFound  = errors.New("core: configuration not found")
)

// Run measures and analyzes every configuration.
func (e *Experiment) Run() (*Results, error) {
	if len(e.Configs) == 0 {
		return nil, ErrNoConfigs
	}
	out := &Results{Meta: e.Meta, Plan: e.Plan}
	for _, cfg := range e.Configs {
		res, err := bench.Run(e.Plan, cfg.Measure)
		if err != nil {
			return nil, fmt.Errorf("core: configuration %q: %w", cfg.Label, err)
		}
		out.Configs = append(out.Configs, ConfigResult{Label: cfg.Label, Result: res})
	}
	return out, nil
}

// Get returns the result for a configuration label.
func (r *Results) Get(label string) (ConfigResult, error) {
	for _, c := range r.Configs {
		if c.Label == label {
			return c, nil
		}
	}
	return ConfigResult{}, fmt.Errorf("%w: %q", ErrNotFound, label)
}

// Comparison is the statistically sound comparison of two
// configurations (Rule 7): the Kruskal–Wallis median test (valid without
// normality), Welch's t-test (meaningful when both samples are plausibly
// normal), CI overlap, and the effect size.
type Comparison struct {
	A, B           string
	MedianTest     htest.TestResult
	MeanTest       htest.TestResult
	MeanTestValid  bool // both samples plausibly normal
	EffectSize     float64
	CIsDisjoint    bool // median CIs do not overlap
	MedianDiffers  bool // Kruskal–Wallis significant at alpha
	Alpha          float64
	MedianABMinusB float64 // median(A) − median(B)
}

// Compare runs the Rule 7 battery on two configuration labels at
// significance level alpha (default 0.05).
func (r *Results) Compare(aLabel, bLabel string, alpha float64) (Comparison, error) {
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	a, err := r.Get(aLabel)
	if err != nil {
		return Comparison{}, err
	}
	b, err := r.Get(bLabel)
	if err != nil {
		return Comparison{}, err
	}
	cmp := Comparison{A: aLabel, B: bLabel, Alpha: alpha}
	kw, err := htest.KruskalWallis(a.Result.Raw, b.Result.Raw)
	if err != nil {
		return Comparison{}, err
	}
	cmp.MedianTest = kw
	cmp.MedianDiffers = kw.Significant(alpha)
	if tt, err := htest.TTest(a.Result.Raw, b.Result.Raw, true); err == nil {
		cmp.MeanTest = tt
		cmp.MeanTestValid = a.Result.PlausiblyNormal && b.Result.PlausiblyNormal
	}
	if es, err := htest.EffectSize(a.Result.Raw, b.Result.Raw); err == nil {
		cmp.EffectSize = es
	}
	cmp.CIsDisjoint = !a.Result.MedianCI.Overlaps(b.Result.MedianCI)
	cmp.MedianABMinusB = a.Result.Summary.Median - b.Result.Summary.Median
	return cmp, nil
}

// QuantileComparison runs the Rule 8 / Fig 4 analysis: per-quantile
// differences between two configurations with confidence bands.
func (r *Results) QuantileComparison(aLabel, bLabel string, taus []float64, confidence float64) ([]qreg.TwoGroupPoint, error) {
	a, err := r.Get(aLabel)
	if err != nil {
		return nil, err
	}
	b, err := r.Get(bLabel)
	if err != nil {
		return nil, err
	}
	return qreg.TwoGroupQuantiles(a.Result.Raw, b.Result.Raw, taus, confidence)
}

// RulesReport derives the auditable rules.Report from what the pipeline
// actually did, plus the experiment's metadata. Fields the pipeline
// cannot know (speedup claims, plots, bounds) are taken from extra.
func (r *Results) RulesReport(extra rules.Report) rules.Report {
	rep := extra
	rep.Title = r.Meta.Name
	rep.Env = r.Meta.Env
	rep.Factors = r.Meta.Factors
	rep.Parallel = r.Meta.Parallel

	deterministic := true
	for _, c := range r.Configs {
		if !c.Result.Deterministic {
			deterministic = false
		}
	}
	rep.Deterministic = deterministic
	rep.ReportsCI = true
	rep.CILevel = r.Configs[0].Result.MedianCI.Confidence
	if rep.CILevel == 0 {
		rep.CILevel = 0.95
	}
	rep.NormalityChecked = true
	rep.UsesMeanCI = false
	rep.CenterJustified = true
	for _, c := range r.Configs {
		if c.Result.PlausiblyNormal {
			rep.UsesMeanCI = true
		}
	}
	method := rules.MedianSummary
	if deterministic || allNormal(r.Configs) {
		switch r.Meta.Kind {
		case stats.Cost:
			method = rules.ArithmeticMean
		case stats.Rate:
			method = rules.HarmonicMean
		default:
			method = rules.GeometricMean
		}
	}
	rep.Summaries = append(rep.Summaries, rules.SummaryUse{
		Metric: r.Meta.Name,
		Kind:   r.Meta.Kind,
		Method: method,
	})
	return rep
}

func allNormal(cs []ConfigResult) bool {
	for _, c := range cs {
		if !c.Result.PlausiblyNormal {
			return false
		}
	}
	return true
}

// Audit runs the twelve-rule audit over the derived report.
func (r *Results) Audit(extra rules.Report) ([]rules.Finding, rules.Compliance) {
	fs := rules.Audit(r.RulesReport(extra))
	return fs, rules.Summarize(fs)
}

// WriteSummaryTable renders one row per configuration with the key
// statistics the paper asks experimenters to report.
func (r *Results) WriteSummaryTable(w io.Writer) error {
	tbl := &report.Table{
		Title: r.Meta.Name + " (" + r.Meta.Unit + ")",
		Headers: []string{
			"config", "n", "mean", "median", "[min, p99]",
			"CI(" + centerName(r) + ")", "CoV", "normal?", "outliers",
		},
	}
	for _, c := range r.Configs {
		s := c.Result.Summary
		_, iv := c.Result.PreferredCenter()
		tbl.AddRow(
			c.Label,
			s.N,
			fmt.Sprintf("%.6g", s.Mean),
			fmt.Sprintf("%.6g", s.Median),
			fmt.Sprintf("[%.6g, %.6g]", s.Min, s.P99),
			fmt.Sprintf("[%.6g, %.6g]", iv.Lo, iv.Hi),
			fmt.Sprintf("%.3g", s.CoV),
			fmt.Sprintf("%v", c.Result.PlausiblyNormal),
			c.Result.OutliersRemoved,
		)
	}
	return tbl.Render(w)
}

func centerName(r *Results) string {
	for _, c := range r.Configs {
		if !c.Result.Deterministic && !c.Result.PlausiblyNormal {
			return "median"
		}
	}
	return "mean"
}

// SortedLabels returns the configuration labels in sorted order.
func (r *Results) SortedLabels() []string {
	out := make([]string, len(r.Configs))
	for i, c := range r.Configs {
		out[i] = c.Label
	}
	sort.Strings(out)
	return out
}
