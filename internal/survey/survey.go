// Package survey models the paper's literature study (§2, Table 1): a
// stratified sample of 120 papers from three anonymized conferences
// (ConfA/B/C) over 2011–2014, scored on nine experimental-design
// documentation classes and four data-analysis practices. The paper
// publishes only aggregate counts; this package reconstructs a synthetic
// per-paper dataset with *exactly* the published marginals (seeded, so
// reproducible) and implements the aggregation that regenerates Table 1
// and the in-text statistics.
package survey

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// DesignClass indexes the nine experimental-design documentation classes
// of Table 1 (upper part).
type DesignClass int

// The nine design classes.
const (
	Processor        DesignClass = iota // processor model / accelerator
	RAM                                 // RAM size / type / bus
	NIC                                 // NIC model / network infos
	Compiler                            // compiler version / flags
	KernelLibs                          // kernel / libraries version
	Filesystem                          // filesystem / storage
	SoftwareInput                       // software and input
	MeasurementSetup                    // measurement setup
	CodeAvailable                       // code available online
	NumDesignClasses
)

// String returns the Table 1 row label.
func (c DesignClass) String() string {
	switch c {
	case Processor:
		return "Processor Model / Accelerator"
	case RAM:
		return "RAM Size / Type / Bus Infos"
	case NIC:
		return "NIC Model / Network Infos"
	case Compiler:
		return "Compiler Version / Flags"
	case KernelLibs:
		return "Kernel / Libraries Version"
	case Filesystem:
		return "Filesystem / Storage"
	case SoftwareInput:
		return "Software and Input"
	case MeasurementSetup:
		return "Measurement Setup"
	case CodeAvailable:
		return "Code Available Online"
	}
	return fmt.Sprintf("DesignClass(%d)", int(c))
}

// AnalysisRow indexes the four data-analysis rows (lower part).
type AnalysisRow int

// The four analysis rows.
const (
	Mean AnalysisRow = iota
	BestWorst
	RankBased
	Variation
	NumAnalysisRows
)

// String returns the Table 1 row label.
func (r AnalysisRow) String() string {
	switch r {
	case Mean:
		return "Mean"
	case BestWorst:
		return "Best / Worst Performance"
	case RankBased:
		return "Rank Based Statistics"
	case Variation:
		return "Measure of Variation"
	}
	return fmt.Sprintf("AnalysisRow(%d)", int(r))
}

// Conferences and years of the stratified sample.
var (
	Conferences = []string{"ConfA", "ConfB", "ConfC"}
	Years       = []int{2011, 2012, 2013, 2014}
)

// PapersPerCell is the per-conference-year sample size.
const PapersPerCell = 10

// Paper is one sampled publication's scoring.
type Paper struct {
	Conference string
	Year       int
	Applicable bool // false: no real-world performance numbers (theory, simulation)
	Design     [NumDesignClasses]bool
	Analysis   [NumAnalysisRows]bool

	ReportsSpeedup   bool // §2.1.1
	SpeedupHasBase   bool // includes absolute base-case performance
	SpecifiesMethod  bool // states the exact averaging method (§3.1.1)
	UnambiguousUnits bool // §2.1.2
	ReportsCI        bool // confidence intervals around a mean (§3.1.2)
}

// DesignScore counts the checked design classes (the per-paper score
// summarized in Table 1's box plots, 0–9).
func (p Paper) DesignScore() int {
	n := 0
	for _, ok := range p.Design {
		if ok {
			n++
		}
	}
	return n
}

// Marginals are the published aggregate counts the synthetic dataset
// must reproduce exactly.
type Marginals struct {
	Total         int // 120
	NotApplicable int // 25

	Design   [NumDesignClasses]int // of applicable papers
	Analysis [NumAnalysisRows]int  // of applicable papers

	Speedups            int // 39 papers report speedups
	SpeedupsWithoutBase int // 15 of them lack the absolute base
	SpecifyMethod       int // 4 of the 51 mean-summarizing papers
	UnambiguousUnits    int // 2 of 95
	ReportCIs           int // 2 of 95
}

// PaperMarginals returns the counts published in the paper (Table 1 and
// the in-text statistics of §2–3).
func PaperMarginals() Marginals {
	return Marginals{
		Total:         120,
		NotApplicable: 25,
		Design: [NumDesignClasses]int{
			Processor:        79,
			RAM:              26,
			NIC:              60,
			Compiler:         35,
			KernelLibs:       20,
			Filesystem:       12,
			SoftwareInput:    48,
			MeasurementSetup: 30,
			CodeAvailable:    7,
		},
		Analysis: [NumAnalysisRows]int{
			Mean:      51,
			BestWorst: 13,
			RankBased: 9,
			Variation: 17,
		},
		Speedups:            39,
		SpeedupsWithoutBase: 15,
		SpecifyMethod:       4,
		UnambiguousUnits:    2,
		ReportCIs:           2,
	}
}

// Dataset is the full per-paper sample.
type Dataset struct {
	Papers []Paper
}

// Synthetic builds a seeded per-paper dataset whose aggregates equal the
// given marginals exactly. Per-paper attributes are assigned by sampling
// without replacement among the applicable papers, so cross-class
// correlations are random — the published data does not constrain them.
func Synthetic(m Marginals, seed uint64) (*Dataset, error) {
	if m.Total != len(Conferences)*len(Years)*PapersPerCell {
		return nil, fmt.Errorf("survey: total %d does not match the 3×4×10 design", m.Total)
	}
	applicable := m.Total - m.NotApplicable
	for c, n := range m.Design {
		if n > applicable {
			return nil, fmt.Errorf("survey: class %v count %d exceeds applicable %d",
				DesignClass(c), n, applicable)
		}
	}
	rng := rand.New(rand.NewPCG(seed, 0x7ab1e1))
	papers := make([]Paper, 0, m.Total)
	for _, conf := range Conferences {
		for _, year := range Years {
			for i := 0; i < PapersPerCell; i++ {
				papers = append(papers, Paper{Conference: conf, Year: year, Applicable: true})
			}
		}
	}
	// Mark the not-applicable papers.
	for _, idx := range samplePapers(rng, m.Total, m.NotApplicable) {
		papers[idx].Applicable = false
	}
	appIdx := make([]int, 0, applicable)
	for i, p := range papers {
		if p.Applicable {
			appIdx = append(appIdx, i)
		}
	}

	pick := func(count int) []int {
		out := samplePapers(rng, len(appIdx), count)
		for i, j := range out {
			out[i] = appIdx[j]
		}
		return out
	}

	for c := DesignClass(0); c < NumDesignClasses; c++ {
		for _, idx := range pick(m.Design[c]) {
			papers[idx].Design[c] = true
		}
	}
	var meanPapers []int
	for r := AnalysisRow(0); r < NumAnalysisRows; r++ {
		sel := pick(m.Analysis[r])
		if r == Mean {
			meanPapers = sel
		}
		for _, idx := range sel {
			papers[idx].Analysis[r] = true
		}
	}
	// Speedup reporting: 39 papers, 15 without absolute base.
	sp := pick(m.Speedups)
	for _, idx := range sp {
		papers[idx].ReportsSpeedup = true
		papers[idx].SpeedupHasBase = true
	}
	for _, k := range samplePapers(rng, len(sp), m.SpeedupsWithoutBase) {
		papers[sp[k]].SpeedupHasBase = false
	}
	// Method specification among the mean-summarizing papers.
	if m.SpecifyMethod > len(meanPapers) {
		return nil, fmt.Errorf("survey: SpecifyMethod %d exceeds mean papers %d",
			m.SpecifyMethod, len(meanPapers))
	}
	for _, k := range samplePapers(rng, len(meanPapers), m.SpecifyMethod) {
		papers[meanPapers[k]].SpecifiesMethod = true
	}
	for _, idx := range pick(m.UnambiguousUnits) {
		papers[idx].UnambiguousUnits = true
	}
	for _, idx := range pick(m.ReportCIs) {
		papers[idx].ReportsCI = true
	}
	return &Dataset{Papers: papers}, nil
}

// samplePapers draws `count` distinct indices from [0, n) via a partial
// Fisher–Yates shuffle.
func samplePapers(rng *rand.Rand, n, count int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < count && i < n; i++ {
		j := i + rng.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:count]
}

// CellSummary is Table 1's per-conference-year box-plot summary of the
// per-paper design scores (0–9), over the 10 sampled papers.
type CellSummary struct {
	Conference string
	Year       int
	Applicable int
	Min        int
	Median     float64
	Max        int
}

// Table1 holds all regenerated aggregates.
type Table1 struct {
	ApplicablePapers int
	DesignCounts     [NumDesignClasses]int
	AnalysisCounts   [NumAnalysisRows]int
	Cells            []CellSummary

	Speedups            int
	SpeedupsWithoutBase int
	SpecifyMethod       int
	UnambiguousUnits    int
	ReportCIs           int
}

// Aggregate recomputes every Table 1 number from the per-paper data.
func (d *Dataset) Aggregate() Table1 {
	var t Table1
	type cellKey struct {
		conf string
		year int
	}
	scores := map[cellKey][]int{}
	applicableInCell := map[cellKey]int{}
	for _, p := range d.Papers {
		key := cellKey{p.Conference, p.Year}
		if !p.Applicable {
			continue
		}
		t.ApplicablePapers++
		applicableInCell[key]++
		scores[key] = append(scores[key], p.DesignScore())
		for c, ok := range p.Design {
			if ok {
				t.DesignCounts[c]++
			}
		}
		for r, ok := range p.Analysis {
			if ok {
				t.AnalysisCounts[r]++
			}
		}
		if p.ReportsSpeedup {
			t.Speedups++
			if !p.SpeedupHasBase {
				t.SpeedupsWithoutBase++
			}
		}
		if p.SpecifiesMethod {
			t.SpecifyMethod++
		}
		if p.UnambiguousUnits {
			t.UnambiguousUnits++
		}
		if p.ReportsCI {
			t.ReportCIs++
		}
	}
	for _, conf := range Conferences {
		for _, year := range Years {
			key := cellKey{conf, year}
			ss := scores[key]
			cell := CellSummary{Conference: conf, Year: year, Applicable: applicableInCell[key]}
			if len(ss) > 0 {
				sort.Ints(ss)
				cell.Min = ss[0]
				cell.Max = ss[len(ss)-1]
				if n := len(ss); n%2 == 1 {
					cell.Median = float64(ss[n/2])
				} else {
					cell.Median = float64(ss[n/2-1]+ss[n/2]) / 2
				}
			}
			t.Cells = append(t.Cells, cell)
		}
	}
	return t
}
