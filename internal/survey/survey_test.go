package survey

import (
	"strings"
	"testing"
)

func TestSyntheticReproducesAllMarginals(t *testing.T) {
	m := PaperMarginals()
	d, err := Synthetic(m, 2015)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Papers) != 120 {
		t.Fatalf("papers = %d", len(d.Papers))
	}
	agg := d.Aggregate()
	if agg.ApplicablePapers != 95 {
		t.Errorf("applicable = %d, want 95", agg.ApplicablePapers)
	}
	wantDesign := map[DesignClass]int{
		Processor: 79, RAM: 26, NIC: 60, Compiler: 35, KernelLibs: 20,
		Filesystem: 12, SoftwareInput: 48, MeasurementSetup: 30, CodeAvailable: 7,
	}
	for c, want := range wantDesign {
		if agg.DesignCounts[c] != want {
			t.Errorf("%v = %d, want %d", c, agg.DesignCounts[c], want)
		}
	}
	wantAnalysis := map[AnalysisRow]int{Mean: 51, BestWorst: 13, RankBased: 9, Variation: 17}
	for r, want := range wantAnalysis {
		if agg.AnalysisCounts[r] != want {
			t.Errorf("%v = %d, want %d", r, agg.AnalysisCounts[r], want)
		}
	}
	if agg.Speedups != 39 || agg.SpeedupsWithoutBase != 15 {
		t.Errorf("speedups = %d/%d, want 39/15", agg.Speedups, agg.SpeedupsWithoutBase)
	}
	if agg.SpecifyMethod != 4 || agg.UnambiguousUnits != 2 || agg.ReportCIs != 2 {
		t.Errorf("text stats = %d/%d/%d, want 4/2/2",
			agg.SpecifyMethod, agg.UnambiguousUnits, agg.ReportCIs)
	}
}

func TestSyntheticDeterministicUnderSeed(t *testing.T) {
	m := PaperMarginals()
	a, err := Synthetic(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Papers {
		if a.Papers[i] != b.Papers[i] {
			t.Fatalf("papers diverge at %d", i)
		}
	}
	c, err := Synthetic(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Papers {
		if a.Papers[i] != c.Papers[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical assignments")
	}
}

func TestCellSummaries(t *testing.T) {
	d, err := Synthetic(PaperMarginals(), 1)
	if err != nil {
		t.Fatal(err)
	}
	agg := d.Aggregate()
	if len(agg.Cells) != 12 {
		t.Fatalf("cells = %d, want 12", len(agg.Cells))
	}
	totalApplicable := 0
	for _, c := range agg.Cells {
		totalApplicable += c.Applicable
		if c.Applicable > PapersPerCell {
			t.Errorf("%s %d: %d applicable papers in a 10-paper cell",
				c.Conference, c.Year, c.Applicable)
		}
		if c.Applicable > 0 {
			if c.Min < 0 || c.Max > int(NumDesignClasses) || float64(c.Min) > c.Median || c.Median > float64(c.Max) {
				t.Errorf("%s %d: inconsistent box summary %d/%g/%d",
					c.Conference, c.Year, c.Min, c.Median, c.Max)
			}
		}
	}
	if totalApplicable != 95 {
		t.Errorf("cells sum to %d applicable, want 95", totalApplicable)
	}
}

func TestSyntheticValidation(t *testing.T) {
	m := PaperMarginals()
	m.Total = 100
	if _, err := Synthetic(m, 1); err == nil {
		t.Error("wrong total should error")
	}
	m = PaperMarginals()
	m.Design[Processor] = 1000
	if _, err := Synthetic(m, 1); err == nil {
		t.Error("impossible class count should error")
	}
	m = PaperMarginals()
	m.SpecifyMethod = 99
	if _, err := Synthetic(m, 1); err == nil {
		t.Error("SpecifyMethod above mean papers should error")
	}
}

func TestDesignScore(t *testing.T) {
	var p Paper
	if p.DesignScore() != 0 {
		t.Error("empty paper score")
	}
	p.Design[Processor] = true
	p.Design[CodeAvailable] = true
	if p.DesignScore() != 2 {
		t.Errorf("score = %d", p.DesignScore())
	}
}

func TestRowLabels(t *testing.T) {
	for c := DesignClass(0); c < NumDesignClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d has no label", c)
		}
	}
	for r := AnalysisRow(0); r < NumAnalysisRows; r++ {
		if r.String() == "" {
			t.Errorf("row %d has no label", r)
		}
	}
	if DesignClass(99).String() == "" || AnalysisRow(99).String() == "" {
		t.Error("unknown values should stringify")
	}
}

// TestSpeedupFractionMatchesPaper reconfirms the §2.1.1 statistic: 15 of
// 39 speedup papers (38%) lack the absolute base case.
func TestSpeedupFractionMatchesPaper(t *testing.T) {
	d, err := Synthetic(PaperMarginals(), 3)
	if err != nil {
		t.Fatal(err)
	}
	agg := d.Aggregate()
	frac := float64(agg.SpeedupsWithoutBase) / float64(agg.Speedups)
	if frac < 0.37 || frac > 0.40 {
		t.Errorf("fraction = %.3f, paper reports 38%%", frac)
	}
}

func TestRenderMatrix(t *testing.T) {
	d, err := Synthetic(PaperMarginals(), 2015)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := d.RenderMatrix(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Check the published totals appear as row annotations.
	for _, want := range []string{"(79/95)", "(7/95)", "(51/95)", "(17/95)", "Processor Model"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q", want)
		}
	}
	// The processor row's marks must total the published counts.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "(79/95)") {
			if got := strings.Count(line, "+"); got != 79 {
				t.Errorf("processor row has %d marks, want 79", got)
			}
			// Not-applicable dots across the row: the paper's 25.
			if got := strings.Count(line, "."); got != 25 {
				t.Errorf("processor row has %d N/A dots, want 25", got)
			}
		}
	}
}
