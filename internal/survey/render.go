package survey

import (
	"fmt"
	"io"
	"strings"
)

// RenderMatrix writes the per-paper check matrix in the visual style of
// the paper's Table 1: one row per design class, one column per paper
// grouped by conference and year, '+' for sufficient documentation, '.'
// for not applicable, ' ' for insufficient. (The paper uses ✓ and •; we
// keep the output ASCII-safe.)
func (d *Dataset) RenderMatrix(w io.Writer) error {
	// Group papers deterministically: conference, then year, then index.
	type cell struct {
		conf string
		year int
	}
	order := make([]cell, 0, len(Conferences)*len(Years))
	for _, c := range Conferences {
		for _, y := range Years {
			order = append(order, cell{c, y})
		}
	}
	grouped := map[cell][]Paper{}
	for _, p := range d.Papers {
		k := cell{p.Conference, p.Year}
		grouped[k] = append(grouped[k], p)
	}

	// Header rows: conference letters and year digits.
	labelW := 0
	for c := DesignClass(0); c < NumDesignClasses; c++ {
		if n := len(c.String()); n > labelW {
			labelW = n
		}
	}
	var confRow, yearRow strings.Builder
	for _, k := range order {
		for range grouped[k] {
			confRow.WriteByte(k.conf[len(k.conf)-1]) // A/B/C
			yearRow.WriteByte(byte('0' + k.year%10))
		}
		confRow.WriteByte(' ')
		yearRow.WriteByte(' ')
	}
	if _, err := fmt.Fprintf(w, "%-*s %s\n%-*s %s\n", labelW, "conference",
		confRow.String(), labelW, "year (2011-2014)", yearRow.String()); err != nil {
		return err
	}

	mark := func(p Paper, ok bool) byte {
		switch {
		case !p.Applicable:
			return '.'
		case ok:
			return '+'
		}
		return ' '
	}
	for c := DesignClass(0); c < NumDesignClasses; c++ {
		var row strings.Builder
		count, applicable := 0, 0
		for _, k := range order {
			for _, p := range grouped[k] {
				row.WriteByte(mark(p, p.Design[c]))
				if p.Applicable {
					applicable++
					if p.Design[c] {
						count++
					}
				}
			}
			row.WriteByte(' ')
		}
		if _, err := fmt.Fprintf(w, "%-*s %s(%d/%d)\n",
			labelW, c.String(), row.String(), count, applicable); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for r := AnalysisRow(0); r < NumAnalysisRows; r++ {
		var row strings.Builder
		count, applicable := 0, 0
		for _, k := range order {
			for _, p := range grouped[k] {
				row.WriteByte(mark(p, p.Analysis[r]))
				if p.Applicable {
					applicable++
					if p.Analysis[r] {
						count++
					}
				}
			}
			row.WriteByte(' ')
		}
		if _, err := fmt.Fprintf(w, "%-*s %s(%d/%d)\n",
			labelW, r.String(), row.String(), count, applicable); err != nil {
			return err
		}
	}
	return nil
}
