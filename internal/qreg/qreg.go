package qreg

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/dist"
)

// Fit is the result of a quantile regression at one quantile tau:
// the coefficient vector Beta (Beta[0] is the intercept when the design
// was built with an intercept column) and the achieved check-function
// loss.
type Fit struct {
	Tau  float64
	Beta []float64
	Loss float64
}

// Regress fits the linear tau-quantile regression of y on the design
// matrix X (rows are observations) by solving the exact Koenker–Bassett
// linear program
//
//	min Σᵢ τ·uᵢ + (1−τ)·vᵢ   s.t.   yᵢ = Xᵢ·β + uᵢ − vᵢ,  u, v ≥ 0
//
// with the simplex method. β is split into positive and negative parts to
// reach standard form. Complexity is polynomial but dense — intended for
// n up to a few thousand; subsample larger datasets (the estimator is
// n-consistent, see SubsampleRegress).
func Regress(x [][]float64, y []float64, tau float64) (Fit, error) {
	n := len(y)
	if n == 0 || len(x) != n {
		return Fit{}, ErrBadShape
	}
	p := len(x[0])
	if p == 0 {
		return Fit{}, ErrBadShape
	}
	if tau <= 0 || tau >= 1 {
		return Fit{}, fmt.Errorf("qreg: tau = %g outside (0, 1)", tau)
	}

	// Columns: beta+ (p), beta- (p), u (n), v (n).
	ncols := 2*p + 2*n
	c := make([]float64, ncols)
	for i := 0; i < n; i++ {
		c[2*p+i] = tau       // u_i
		c[2*p+n+i] = 1 - tau // v_i
	}
	a := make([][]float64, n)
	b := make([]float64, n)
	basis := make([]int, n)
	for i := 0; i < n; i++ {
		row := make([]float64, ncols)
		if len(x[i]) != p {
			return Fit{}, ErrBadShape
		}
		for j := 0; j < p; j++ {
			row[j] = x[i][j]
			row[p+j] = -x[i][j]
		}
		row[2*p+i] = 1    // + u_i
		row[2*p+n+i] = -1 // − v_i
		// Standard form needs b >= 0 for the trivial starting basis:
		// flip the row when y_i < 0 and start from v_i instead of u_i.
		if y[i] >= 0 {
			b[i] = y[i]
			basis[i] = 2*p + i // u_i basic
		} else {
			for j := range row {
				row[j] = -row[j]
			}
			b[i] = -y[i]
			basis[i] = 2*p + n + i // v_i basic
		}
		a[i] = row
	}

	lp := &LP{C: c, A: a, B: b, Basis: basis}
	sol, obj, err := lp.Solve()
	if err != nil {
		return Fit{}, err
	}
	beta := make([]float64, p)
	for j := 0; j < p; j++ {
		beta[j] = sol[j] - sol[p+j]
	}
	return Fit{Tau: tau, Beta: beta, Loss: obj}, nil
}

// CheckLoss evaluates the quantile-regression objective
// Σ ρ_τ(yᵢ − Xᵢ·β) with ρ_τ(r) = r·(τ − 1{r<0}).
func CheckLoss(x [][]float64, y []float64, beta []float64, tau float64) float64 {
	loss := 0.0
	for i := range y {
		r := y[i]
		for j := range beta {
			r -= x[i][j] * beta[j]
		}
		if r >= 0 {
			loss += tau * r
		} else {
			loss += (tau - 1) * r
		}
	}
	return loss
}

// SubsampleRegress fits the tau-quantile regression on a uniform random
// subsample of at most maxN observations, which keeps the simplex
// tractable on the paper's million-sample latency datasets while
// preserving the estimator's consistency.
func SubsampleRegress(x [][]float64, y []float64, tau float64, maxN int, rng *rand.Rand) (Fit, error) {
	n := len(y)
	if maxN <= 0 || n <= maxN {
		return Regress(x, y, tau)
	}
	idx := rng.Perm(n)[:maxN]
	sort.Ints(idx)
	sx := make([][]float64, maxN)
	sy := make([]float64, maxN)
	for i, id := range idx {
		sx[i] = x[id]
		sy[i] = y[id]
	}
	return Regress(sx, sy, tau)
}

// TwoGroupPoint is one quantile's comparison between a base system and an
// alternative: Intercept is the base group's tau-quantile, Difference the
// alternative's offset at that quantile, with nonparametric confidence
// bounds on each (the layout of the paper's Figure 4).
type TwoGroupPoint struct {
	Tau            float64
	Intercept      float64
	InterceptLo    float64
	InterceptHi    float64
	Difference     float64
	DifferenceLo   float64
	DifferenceHi   float64
	SignificantDif bool
}

// TwoGroupQuantiles computes, for each requested tau, the quantile
// regression of a measurement on a binary system indicator — analytically
// (for the one-regressor binary design the LP solution is exactly the
// per-group quantile and the quantile difference), with rank-based
// confidence bounds derived per group and combined conservatively.
// This is the computation behind Figure 4, scaled to millions of samples.
func TwoGroupQuantiles(base, alt []float64, taus []float64, confidence float64) ([]TwoGroupPoint, error) {
	if len(base) < 6 || len(alt) < 6 {
		return nil, fmt.Errorf("qreg: need at least 6 observations per group")
	}
	sb := append([]float64(nil), base...)
	sa := append([]float64(nil), alt...)
	sort.Float64s(sb)
	sort.Float64s(sa)

	out := make([]TwoGroupPoint, 0, len(taus))
	for _, tau := range taus {
		if tau <= 0 || tau >= 1 {
			return nil, fmt.Errorf("qreg: tau = %g outside (0, 1)", tau)
		}
		bq, blo, bhi := rankCI(sb, tau, confidence)
		aq, alo, ahi := rankCI(sa, tau, confidence)
		pt := TwoGroupPoint{
			Tau:          tau,
			Intercept:    bq,
			InterceptLo:  blo,
			InterceptHi:  bhi,
			Difference:   aq - bq,
			DifferenceLo: alo - bhi, // conservative interval arithmetic
			DifferenceHi: ahi - blo,
		}
		pt.SignificantDif = pt.DifferenceLo > 0 || pt.DifferenceHi < 0
		out = append(out, pt)
	}
	return out, nil
}

// rankCI returns the tau-quantile of the sorted sample plus Le Boudec
// rank-based confidence bounds (the same construction as ci.QuantileCI,
// specialized to pre-sorted data so repeated taus avoid re-sorting
// million-element samples).
func rankCI(sorted []float64, tau, confidence float64) (q, lo, hi float64) {
	n := len(sorted)
	nf := float64(n)
	// Type-7 interpolated quantile.
	h := tau * (nf - 1)
	li := int(math.Floor(h))
	if li >= n-1 {
		q = sorted[n-1]
	} else {
		q = sorted[li] + (h-float64(li))*(sorted[li+1]-sorted[li])
	}
	z := dist.NormalQuantile(1 - (1-confidence)/2)
	sd := z * math.Sqrt(nf*tau*(1-tau))
	loRank := int(math.Floor(nf*tau - sd))
	hiRank := int(math.Ceil(nf*tau+sd)) + 1
	if loRank < 1 {
		loRank = 1
	}
	if hiRank > n {
		hiRank = n
	}
	return q, sorted[loRank-1], sorted[hiRank-1]
}
