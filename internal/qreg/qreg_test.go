package qreg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestSimplexKnownLP(t *testing.T) {
	// minimize -3x - 5y s.t. x + s1 = 4; 2y + s2 = 12; 3x + 2y + s3 = 18.
	// Classic Dantzig example: optimum x=2, y=6, obj = -36.
	lp := &LP{
		C: []float64{-3, -5, 0, 0, 0},
		A: [][]float64{
			{1, 0, 1, 0, 0},
			{0, 2, 0, 1, 0},
			{3, 2, 0, 0, 1},
		},
		B:     []float64{4, 12, 18},
		Basis: []int{2, 3, 4},
	}
	x, obj, err := lp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-6) > 1e-9 {
		t.Errorf("x = %v, want (2, 6, ...)", x)
	}
	if math.Abs(obj+36) > 1e-9 {
		t.Errorf("obj = %g, want -36", obj)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// minimize -x s.t. x - s = 0 (x can grow forever).
	lp := &LP{
		C:     []float64{-1, 0},
		A:     [][]float64{{1, -1}},
		B:     []float64{0},
		Basis: []int{1},
	}
	if _, _, err := lp.Solve(); err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestSimplexBadShape(t *testing.T) {
	lp := &LP{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}, Basis: []int{0}}
	if _, _, err := lp.Solve(); err != ErrBadShape {
		t.Errorf("err = %v, want ErrBadShape", err)
	}
	empty := &LP{}
	if _, _, err := empty.Solve(); err != ErrBadShape {
		t.Errorf("empty: err = %v", err)
	}
}

func interceptDesign(n int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		x[i] = []float64{1}
	}
	return x
}

func TestRegressInterceptOnlyIsQuantile(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	y := make([]float64, 101)
	for i := range y {
		y[i] = rng.NormFloat64()*5 + 20
	}
	x := interceptDesign(len(y))
	for _, tau := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		fit, err := Regress(x, y, tau)
		if err != nil {
			t.Fatal(err)
		}
		// The LP optimum of intercept-only QR is attained at an order
		// statistic; its loss must equal the loss at the empirical
		// quantile within tie slack, and never exceed it.
		qLoss := CheckLoss(x, y, []float64{stats.QuantileOf(y, tau)}, tau)
		if fit.Loss > qLoss+1e-7 {
			t.Errorf("tau=%g: LP loss %g exceeds quantile loss %g", tau, fit.Loss, qLoss)
		}
		// And the estimate must be within the data range near the quantile.
		lo := stats.QuantileOf(y, math.Max(0, tau-0.05))
		hi := stats.QuantileOf(y, math.Min(1, tau+0.05))
		if fit.Beta[0] < lo-1e-9 || fit.Beta[0] > hi+1e-9 {
			t.Errorf("tau=%g: intercept %g outside [%g, %g]", tau, fit.Beta[0], lo, hi)
		}
	}
}

func TestRegressExactLine(t *testing.T) {
	// Noise-free y = 2 + 3x: every tau recovers the line exactly.
	n := 50
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := float64(i) / 10
		x[i] = []float64{1, xi}
		y[i] = 2 + 3*xi
	}
	for _, tau := range []float64{0.2, 0.5, 0.8} {
		fit, err := Regress(x, y, tau)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Beta[0]-2) > 1e-6 || math.Abs(fit.Beta[1]-3) > 1e-6 {
			t.Errorf("tau=%g: beta = %v, want (2, 3)", tau, fit.Beta)
		}
		if fit.Loss > 1e-6 {
			t.Errorf("tau=%g: loss = %g, want 0", tau, fit.Loss)
		}
	}
}

func TestMedianRegressionRobustToOutliers(t *testing.T) {
	// A line with one gross outlier: median regression shrugs it off
	// while the mean (least squares) would be dragged.
	rng := rand.New(rand.NewPCG(4, 2))
	n := 60
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := rng.Float64() * 10
		x[i] = []float64{1, xi}
		y[i] = 1 + 2*xi + 0.01*rng.NormFloat64()
	}
	y[7] += 1e4 // gross outlier
	fit, err := Regress(x, y, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Beta[0]-1) > 0.05 || math.Abs(fit.Beta[1]-2) > 0.05 {
		t.Errorf("outlier broke median regression: beta = %v", fit.Beta)
	}
}

// TestRegressOptimalityProperty verifies LP optimality: no random
// perturbation of the fitted coefficients improves the check loss.
func TestRegressOptimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	n := 40
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := rng.Float64() * 5
		x[i] = []float64{1, xi}
		y[i] = 3 - xi + math.Exp(rng.NormFloat64())
	}
	fit, err := Regress(x, y, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	base := CheckLoss(x, y, fit.Beta, 0.7)
	f := func(d0, d1 float64) bool {
		// Bound perturbations to a sane range.
		b := []float64{
			fit.Beta[0] + math.Mod(d0, 10),
			fit.Beta[1] + math.Mod(d1, 10),
		}
		return CheckLoss(x, y, b, 0.7) >= base-1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegressQuantileCrossingMonotone(t *testing.T) {
	// For intercept-only designs, fitted quantiles must be monotone
	// in tau.
	rng := rand.New(rand.NewPCG(17, 3))
	y := make([]float64, 80)
	for i := range y {
		y[i] = math.Exp(rng.NormFloat64())
	}
	x := interceptDesign(len(y))
	prev := math.Inf(-1)
	for _, tau := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		fit, err := Regress(x, y, tau)
		if err != nil {
			t.Fatal(err)
		}
		if fit.Beta[0] < prev-1e-9 {
			t.Errorf("quantile estimates not monotone at tau=%g", tau)
		}
		prev = fit.Beta[0]
	}
}

func TestRegressErrors(t *testing.T) {
	x := interceptDesign(3)
	y := []float64{1, 2, 3}
	if _, err := Regress(x, y, 0); err == nil {
		t.Error("tau=0 should error")
	}
	if _, err := Regress(x, y, 1); err == nil {
		t.Error("tau=1 should error")
	}
	if _, err := Regress(x[:2], y, 0.5); err != ErrBadShape {
		t.Error("shape mismatch should error")
	}
	if _, err := Regress(nil, nil, 0.5); err != ErrBadShape {
		t.Error("empty should error")
	}
	if _, err := Regress([][]float64{{1}, {1, 2}, {1}}, y, 0.5); err != ErrBadShape {
		t.Error("ragged design should error")
	}
}

func TestSubsampleRegress(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	n := 5000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xi := rng.Float64()
		x[i] = []float64{1, xi}
		y[i] = 1 + 0.5*xi + 0.1*rng.NormFloat64()
	}
	fit, err := SubsampleRegress(x, y, 0.5, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Beta[0]-1) > 0.1 || math.Abs(fit.Beta[1]-0.5) > 0.3 {
		t.Errorf("subsampled beta = %v, want ≈(1, 0.5)", fit.Beta)
	}
	// maxN larger than n falls through to exact fit.
	small := x[:50]
	if _, err := SubsampleRegress(small, y[:50], 0.5, 1000, rng); err != nil {
		t.Fatal(err)
	}
}

func TestTwoGroupQuantilesFig4Scenario(t *testing.T) {
	// Construct the paper's Fig 4 situation: the base system (Dora) is
	// slower at low quantiles but faster at high quantiles than the
	// alternative (Pilatus); mean/median favor one side while the tail
	// favors the other.
	rng := rand.New(rand.NewPCG(6, 7))
	n := 20000
	base := make([]float64, n) // "Piz Dora": tight but slower baseline latency
	alt := make([]float64, n)  // "Pilatus": slower body, lighter tail
	for i := 0; i < n; i++ {
		base[i] = 1.70 + 0.05*rng.Float64() + math.Exp(rng.NormFloat64()*0.8)*0.04
		alt[i] = 1.85 + 0.03*rng.Float64() + 0.001*rng.NormFloat64()
	}
	taus := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99}
	pts, err := TwoGroupQuantiles(base, alt, taus, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(taus) {
		t.Fatalf("points = %d", len(pts))
	}
	// Low quantile: alt is slower (positive difference).
	if pts[0].Difference <= 0 {
		t.Errorf("low quantile difference = %g, want > 0", pts[0].Difference)
	}
	// Very high quantile: base's tail overtakes (negative difference).
	last := pts[len(pts)-1]
	if last.Difference >= 0 {
		t.Errorf("p99 difference = %g, want < 0 (sign flip)", last.Difference)
	}
	// With n=20000, both ends should be statistically significant.
	if !pts[0].SignificantDif || !last.SignificantDif {
		t.Error("expected significant differences at both extremes")
	}
	// Intercepts track the base quantiles and are bracketed by their CIs.
	for _, pt := range pts {
		if pt.InterceptLo > pt.Intercept || pt.Intercept > pt.InterceptHi {
			t.Errorf("tau=%g: intercept %g outside its CI [%g, %g]",
				pt.Tau, pt.Intercept, pt.InterceptLo, pt.InterceptHi)
		}
		if pt.DifferenceLo > pt.Difference || pt.Difference > pt.DifferenceHi {
			t.Errorf("tau=%g: difference outside its band", pt.Tau)
		}
	}
}

func TestTwoGroupQuantilesErrors(t *testing.T) {
	if _, err := TwoGroupQuantiles([]float64{1, 2}, []float64{1, 2, 3, 4, 5, 6}, []float64{0.5}, 0.95); err == nil {
		t.Error("tiny group should error")
	}
	six := []float64{1, 2, 3, 4, 5, 6}
	if _, err := TwoGroupQuantiles(six, six, []float64{0}, 0.95); err == nil {
		t.Error("tau=0 should error")
	}
}

func TestRegressAgreesWithTwoGroupAnalytic(t *testing.T) {
	// Binary design: LP result must match per-group quantile arithmetic.
	rng := rand.New(rand.NewPCG(9, 1))
	var x [][]float64
	var y []float64
	var g0, g1 []float64
	for i := 0; i < 120; i++ {
		v := rng.NormFloat64()
		if i%2 == 0 {
			x = append(x, []float64{1, 0})
			y = append(y, 5+v)
			g0 = append(g0, 5+v)
		} else {
			x = append(x, []float64{1, 1})
			y = append(y, 7+v)
			g1 = append(g1, 7+v)
		}
	}
	fit, err := Regress(x, y, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	analytic := CheckLoss(x, y, []float64{
		stats.Median(g0),
		stats.Median(g1) - stats.Median(g0),
	}, 0.5)
	if fit.Loss > analytic+1e-7 {
		t.Errorf("LP loss %g exceeds analytic group-median loss %g", fit.Loss, analytic)
	}
}

// TestSimplexRandomLPsAgainstVertexEnumeration cross-checks the simplex
// on small random LPs: min c·x s.t. x1+x2+s = b (one constraint), whose
// optimum is computable by inspection.
func TestSimplexRandomLPsAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 99))
	for trial := 0; trial < 200; trial++ {
		// min c1·x1 + c2·x2  s.t.  x1 + x2 + s = b;  x, s >= 0.
		c1 := rng.Float64()*4 - 2
		c2 := rng.Float64()*4 - 2
		b := rng.Float64()*10 + 0.1
		lp := &LP{
			C:     []float64{c1, c2, 0},
			A:     [][]float64{{1, 1, 1}},
			B:     []float64{b},
			Basis: []int{2},
		}
		_, obj, err := lp.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Optimum: put everything on the cheapest of {x1, x2, slack}.
		want := math.Min(0, math.Min(c1, c2)*b)
		if math.Abs(obj-want) > 1e-9 {
			t.Fatalf("trial %d: obj %g, want %g (c=%g,%g b=%g)", trial, obj, want, c1, c2, b)
		}
	}
}
