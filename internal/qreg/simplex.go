// Package qreg implements quantile regression (paper §3.2.3) from
// scratch: the estimator is the exact linear-programming formulation of
// Koenker & Bassett solved with a dense primal simplex method, plus
// nonparametric confidence bands. Quantile regression models the effect
// of factors on arbitrary quantiles — the paper uses it to show that two
// systems can rank differently at low and high percentiles even when
// their means and medians agree on a winner (Fig 4).
package qreg

import (
	"errors"
	"fmt"
	"math"
)

// Simplex errors.
var (
	ErrInfeasible = errors.New("qreg: linear program is infeasible")
	ErrUnbounded  = errors.New("qreg: linear program is unbounded")
	ErrMaxIter    = errors.New("qreg: simplex iteration limit exceeded")
	ErrBadShape   = errors.New("qreg: inconsistent problem dimensions")
)

// LP is a linear program in standard equality form:
//
//	minimize  c·x   subject to   A·x = b,  x >= 0.
//
// Basis must name one column per row forming a feasible starting basis
// (the quantile-regression construction always has one available, so no
// phase-1 is needed).
type LP struct {
	C     []float64
	A     [][]float64
	B     []float64
	Basis []int
}

// Solve runs the primal simplex method with Bland's anti-cycling rule and
// returns the optimal vertex and objective value.
func (lp *LP) Solve() (x []float64, obj float64, err error) {
	m := len(lp.A)
	if m == 0 || len(lp.B) != m || len(lp.Basis) != m {
		return nil, 0, ErrBadShape
	}
	n := len(lp.C)
	for _, row := range lp.A {
		if len(row) != n {
			return nil, 0, ErrBadShape
		}
	}

	// Build the tableau: rows 0..m-1 are constraints (augmented with b in
	// the last column), row m is the reduced-cost row.
	t := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, n+1)
		copy(t[i], lp.A[i])
		t[i][n] = lp.B[i]
	}
	t[m] = make([]float64, n+1)
	copy(t[m], lp.C)

	basis := make([]int, m)
	copy(basis, lp.Basis)

	// Price out the initial basis so reduced costs are consistent.
	for i, bj := range basis {
		if bj < 0 || bj >= n {
			return nil, 0, ErrBadShape
		}
		if t[i][bj] == 0 {
			return nil, 0, fmt.Errorf("qreg: zero pivot in initial basis column %d", bj)
		}
		pivotRow(t, i, bj)
	}
	// Feasibility of the starting basis.
	for i := 0; i < m; i++ {
		if t[i][n] < -1e-9 {
			return nil, 0, ErrInfeasible
		}
	}

	const eps = 1e-10
	maxIter := 50 * (m + n)
	for iter := 0; iter < maxIter; iter++ {
		// Entering column: Bland's rule (lowest index with negative
		// reduced cost).
		enter := -1
		for j := 0; j < n; j++ {
			if t[m][j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			// Optimal.
			x = make([]float64, n)
			for i, bj := range basis {
				x[bj] = t[i][n]
			}
			return x, -t[m][n], nil
		}
		// Leaving row: minimum ratio, ties broken by lowest basis index
		// (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][n] / t[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return nil, 0, ErrUnbounded
		}
		pivotRow(t, leave, enter)
		basis[leave] = enter
	}
	return nil, 0, ErrMaxIter
}

// pivotRow performs a Gauss–Jordan pivot on tableau element (r, c).
func pivotRow(t [][]float64, r, c int) {
	pr := t[r]
	inv := 1 / pr[c]
	for j := range pr {
		pr[j] *= inv
	}
	pr[c] = 1 // exact
	for i := range t {
		if i == r {
			continue
		}
		f := t[i][c]
		if f == 0 {
			continue
		}
		row := t[i]
		for j := range row {
			row[j] -= f * pr[j]
		}
		row[c] = 0 // exact
	}
}
