// Package workloads implements the benchmark computations behind the
// paper's experiments: a real blocked LU factorization with partial
// pivoting (the computational core of HPL, Fig 1), a distributed HPL
// execution model on the simulated cluster, the parallel Pi computation
// of the scaling study (Fig 7a/b), and a STREAM-style triad for machine
// model calibration (§5.1).
package workloads

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
)

// Matrix is a dense row-major n×n matrix.
type Matrix struct {
	N    int
	Data []float64 // row-major, len N*N
}

// NewRandomMatrix builds a random matrix with entries uniform in
// [-0.5, 0.5), the same construction HPL uses (partial pivoting handles
// conditioning).
func NewRandomMatrix(n int, rng *rand.Rand) *Matrix {
	m := &Matrix{N: n, Data: make([]float64, n*n)}
	for i := range m.Data {
		m.Data[i] = rng.Float64() - 0.5
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{N: m.N, Data: append([]float64(nil), m.Data...)}
}

// LUFactorization holds an in-place LU decomposition with partial
// pivoting: PA = LU, with L unit-lower-triangular and U upper-triangular
// packed into the factored matrix, and Pivots the row-interchange record.
type LUFactorization struct {
	LU     *Matrix
	Pivots []int
}

// ErrSingular is returned when a zero pivot is encountered.
var ErrSingular = errors.New("workloads: matrix is numerically singular")

// LUFactor computes the blocked right-looking LU factorization with
// partial pivoting, using block size nb (clamped to [1, n]). The trailing
// update — the O(n³) bulk of the work, HPL's DGEMM — is parallelized
// across the machine's cores.
func LUFactor(a *Matrix, nb int) (*LUFactorization, error) {
	n := a.N
	if n == 0 {
		return nil, errors.New("workloads: empty matrix")
	}
	if nb < 1 {
		nb = 1
	}
	if nb > n {
		nb = n
	}
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}

	for k := 0; k < n; k += nb {
		b := min(nb, n-k)
		// Factor the panel columns k..k+b-1 (unblocked, with pivoting
		// applied across the full row).
		for j := k; j < k+b; j++ {
			// Pivot search in column j, rows j..n-1.
			p := j
			maxAbs := math.Abs(lu.At(j, j))
			for i := j + 1; i < n; i++ {
				if v := math.Abs(lu.At(i, j)); v > maxAbs {
					maxAbs = v
					p = i
				}
			}
			if maxAbs == 0 {
				return nil, ErrSingular
			}
			if p != j {
				swapRows(lu, p, j)
				piv[p], piv[j] = piv[j], piv[p]
			}
			// Eliminate below the pivot within the panel and compute
			// multipliers.
			inv := 1 / lu.At(j, j)
			for i := j + 1; i < n; i++ {
				lij := lu.At(i, j) * inv
				lu.Set(i, j, lij)
				for c := j + 1; c < k+b; c++ {
					lu.Set(i, c, lu.At(i, c)-lij*lu.At(j, c))
				}
			}
		}
		if k+b >= n {
			break
		}
		// Triangular solve: U12 = L11⁻¹·A12 (L11 unit lower).
		for i := k; i < k+b; i++ {
			for r := k; r < i; r++ {
				lir := lu.At(i, r)
				if lir == 0 {
					continue
				}
				for c := k + b; c < n; c++ {
					lu.Set(i, c, lu.At(i, c)-lir*lu.At(r, c))
				}
			}
		}
		// Trailing update: A22 -= L21·U12, parallelized over row bands.
		parallelRows(k+b, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for r := k; r < k+b; r++ {
					lir := lu.At(i, r)
					if lir == 0 {
						continue
					}
					row := lu.Data[i*n:]
					urow := lu.Data[r*n:]
					for c := k + b; c < n; c++ {
						row[c] -= lir * urow[c]
					}
				}
			}
		})
	}
	return &LUFactorization{LU: lu, Pivots: piv}, nil
}

func swapRows(m *Matrix, a, b int) {
	ra := m.Data[a*m.N : (a+1)*m.N]
	rb := m.Data[b*m.N : (b+1)*m.N]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// parallelRows splits [lo, hi) into GOMAXPROCS contiguous bands and runs
// fn on each concurrently.
func parallelRows(lo, hi int, fn func(lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(lo, hi)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		a := lo + w*chunk
		b := min(a+chunk, hi)
		if a >= b {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(a, b)
		}()
	}
	wg.Wait()
}

// Solve solves Ax = rhs using the factorization (forward elimination
// with the recorded pivoting, then back substitution).
func (f *LUFactorization) Solve(rhs []float64) ([]float64, error) {
	n := f.LU.N
	if len(rhs) != n {
		return nil, fmt.Errorf("workloads: rhs length %d != %d", len(rhs), n)
	}
	// Apply the permutation: piv[i] names the original row now at i.
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rhs[f.Pivots[i]]
	}
	// Forward: Ly = Pb.
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.LU.Data[i*n:]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Backward: Ux = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := f.LU.Data[i*n:]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Residual returns the scaled HPL-style residual
// ‖Ax − b‖∞ / (ε · ‖A‖∞ · ‖x‖∞ · n); values below ~16 indicate a
// numerically correct solve.
func Residual(a *Matrix, x, b []float64) float64 {
	n := a.N
	var rmax, anorm, xnorm float64
	for i := 0; i < n; i++ {
		s := -b[i]
		var rowsum float64
		row := a.Data[i*n:]
		for j := 0; j < n; j++ {
			s += row[j] * x[j]
			rowsum += math.Abs(row[j])
		}
		rmax = math.Max(rmax, math.Abs(s))
		anorm = math.Max(anorm, rowsum)
	}
	for _, v := range x {
		xnorm = math.Max(xnorm, math.Abs(v))
	}
	eps := math.Nextafter(1, 2) - 1
	return rmax / (eps * anorm * xnorm * float64(n))
}

// LUFlops returns the floating point operation count HPL credits for an
// n×n factorization and solve: 2/3·n³ + 3/2·n².
func LUFlops(n int) float64 {
	nf := float64(n)
	return 2.0/3.0*nf*nf*nf + 1.5*nf*nf
}
