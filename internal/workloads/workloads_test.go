package workloads

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/stats"
)

func TestLUFactorSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 2, 5, 33, 100} {
		for _, nb := range []int{1, 4, 32, 200} {
			a := NewRandomMatrix(n, rng)
			f, err := LUFactor(a, nb)
			if err != nil {
				t.Fatalf("n=%d nb=%d: %v", n, nb, err)
			}
			// Build b = A·ones so the exact solution is known.
			ones := make([]float64, n)
			b := make([]float64, n)
			for i := range ones {
				ones[i] = 1
			}
			for i := 0; i < n; i++ {
				s := 0.0
				for j := 0; j < n; j++ {
					s += a.At(i, j)
				}
				b[i] = s
			}
			x, err := f.Solve(b)
			if err != nil {
				t.Fatalf("n=%d nb=%d solve: %v", n, nb, err)
			}
			if r := Residual(a, x, b); r > 16 {
				t.Errorf("n=%d nb=%d: residual %g too large", n, nb, r)
			}
			for i, v := range x {
				if math.Abs(v-1) > 1e-8 {
					t.Fatalf("n=%d nb=%d: x[%d] = %g, want 1", n, nb, i, v)
				}
			}
		}
	}
}

func TestLUBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := NewRandomMatrix(40, rng)
	f1, err := LUFactor(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := LUFactor(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1.LU.Data {
		if math.Abs(f1.LU.Data[i]-f8.LU.Data[i]) > 1e-9 {
			t.Fatalf("blocked and unblocked factorizations diverge at %d", i)
		}
	}
	for i := range f1.Pivots {
		if f1.Pivots[i] != f8.Pivots[i] {
			t.Fatalf("pivot sequences diverge at %d", i)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := &Matrix{N: 2, Data: []float64{1, 2, 2, 4}} // rank 1
	if _, err := LUFactor(a, 1); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	if _, err := LUFactor(&Matrix{}, 1); err == nil {
		t.Error("empty matrix should error")
	}
}

func TestSolveValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := NewRandomMatrix(4, rng)
	f, err := LUFactor(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Error("wrong rhs length should error")
	}
}

func TestLUFlops(t *testing.T) {
	if got := LUFlops(100); math.Abs(got-(2.0/3.0*1e6+1.5e4)) > 1 {
		t.Errorf("LUFlops(100) = %g", got)
	}
}

func TestRunHPLProducesPlausibleRate(t *testing.T) {
	cfg := HPLConfig{N: 2048, NB: 128, P: 4, Q: 4}
	m, err := cluster.New(cluster.PizDaint(), cfg.Ranks(), 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunHPL(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion <= 0 {
		t.Fatal("non-positive completion")
	}
	// Efficiency must be below 1 (can't beat peak) and above a floor.
	peak := 16 * 8 * cluster.PizDaint().FlopsPerSec // 16 ranks × 8 cores... ranks are cores here
	_ = peak
	rate := res.Flops / res.Completion.Seconds()
	perRank := rate / 16
	if perRank >= cluster.PizDaint().FlopsPerSec {
		t.Errorf("per-rank rate %g exceeds peak %g", perRank, cluster.PizDaint().FlopsPerSec)
	}
	if perRank < 0.1*cluster.PizDaint().FlopsPerSec {
		t.Errorf("per-rank rate %g implausibly low", perRank)
	}
}

func TestRunHPLValidation(t *testing.T) {
	m, _ := cluster.New(cluster.Quiet(4, 4), 16, 1)
	if _, err := RunHPL(m, HPLConfig{N: 0, NB: 1, P: 4, Q: 4}); err == nil {
		t.Error("N=0 should error")
	}
	if _, err := RunHPL(m, HPLConfig{N: 100, NB: 200, P: 4, Q: 4}); err == nil {
		t.Error("NB>N should error")
	}
	if _, err := RunHPL(m, HPLConfig{N: 256, NB: 32, P: 2, Q: 2}); err == nil {
		t.Error("rank mismatch should error")
	}
}

func TestHPLSeriesVariesAcrossRuns(t *testing.T) {
	// The Fig 1 phenomenon: repeated identical HPL runs on a noisy
	// machine produce a spread of completion times, right-skewed.
	cfg := HPLConfig{N: 1024, NB: 128, P: 4, Q: 4}
	m, err := cluster.New(cluster.PizDaint(), 16, 99)
	if err != nil {
		t.Fatal(err)
	}
	times, results, err := HPLSeries(m, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 50 || len(results) != 50 {
		t.Fatalf("series lengths %d/%d", len(times), len(results))
	}
	cov := stats.CoV(times)
	if cov <= 0.0005 {
		t.Errorf("CoV = %g, expected visible nondeterminism", cov)
	}
	if cov > 0.5 {
		t.Errorf("CoV = %g, implausibly noisy", cov)
	}
	if stats.Min(times) == stats.Max(times) {
		t.Error("all runs identical; noise model inert")
	}
}

func TestComputePiDigits(t *testing.T) {
	got, err := ComputePiDigits(50, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The final digit may round (π continues …51058…), so compare all
	// but the last.
	want := "3.1415926535897932384626433832795028841971693993751"
	if !strings.HasPrefix(got, want) {
		t.Errorf("pi = %s, want prefix %s", got, want)
	}
}

func TestComputePiDigitsWorkerInvariance(t *testing.T) {
	ref, err := ComputePiDigits(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The full rounded string — every digit, not a truncated prefix —
	// must be identical regardless of the parallel decomposition: the
	// guard precision absorbs the reordered big-float reduction.
	for w := 2; w <= 7; w++ {
		got, err := ComputePiDigits(200, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("workers=%d changed the result:\n%s\n%s", w, ref, got)
		}
	}
}

// TestComputePiDigitsDefaultWorkersFixed pins the defaulting bug: an
// unspecified worker count must resolve to the fixed constant, not to
// GOMAXPROCS, so the default result can never depend on the host's core
// count (Rule 9: harness behaviour is part of the experimental setup).
func TestComputePiDigitsDefaultWorkersFixed(t *testing.T) {
	def, err := ComputePiDigits(120, 0)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := ComputePiDigits(120, piDefaultWorkers)
	if err != nil {
		t.Fatal(err)
	}
	if def != fixed {
		t.Errorf("default workers diverge from piDefaultWorkers=%d:\n%s\n%s",
			piDefaultWorkers, def, fixed)
	}
	neg, err := ComputePiDigits(120, -3)
	if err != nil {
		t.Fatal(err)
	}
	if neg != fixed {
		t.Errorf("negative workers diverge from piDefaultWorkers=%d", piDefaultWorkers)
	}
}

func TestComputePiDigitsValidation(t *testing.T) {
	if _, err := ComputePiDigits(0, 1); err == nil {
		t.Error("0 digits should error")
	}
	if _, err := ComputePiDigits(1000001, 1); err == nil {
		t.Error("absurd digits should error")
	}
}

func TestSimulatePiScalingShape(t *testing.T) {
	pc := PiScalingConfig{Base: 20 * time.Millisecond, Serial: 0.01, ReduceBytes: 8}
	ps := []int{1, 2, 4, 8, 16, 32}
	points, raw, err := SimulatePiScaling(cluster.PizDaint(), pc, ps, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(ps) || len(raw) != len(ps) {
		t.Fatalf("lengths %d/%d", len(points), len(raw))
	}
	// Times must decrease with p (up to 32 the overheads don't win yet).
	for i := 1; i < len(points); i++ {
		if points[i].Time >= points[i-1].Time {
			t.Errorf("time at p=%d (%v) not below p=%d (%v)",
				points[i].P, points[i].Time, points[i-1].P, points[i-1].Time)
		}
	}
	// Speedup below ideal and below Amdahl's cap.
	for _, pt := range points {
		if pt.Speedup > float64(pt.P)*1.02 {
			t.Errorf("p=%d: speedup %g super-linear", pt.P, pt.Speedup)
		}
	}
	// The base case's speedup is 1 by construction.
	if math.Abs(points[0].Speedup-1) > 1e-9 {
		t.Errorf("base speedup = %g", points[0].Speedup)
	}
}

func TestSimulatePiScalingValidation(t *testing.T) {
	pc := PiScalingConfig{Base: 0}
	if _, _, err := SimulatePiScaling(cluster.Quiet(4, 4), pc, []int{1}, 1, 1); err == nil {
		t.Error("zero base should error")
	}
	pc = PiScalingConfig{Base: time.Millisecond}
	if _, _, err := SimulatePiScaling(cluster.Quiet(4, 4), pc, []int{0}, 1, 1); err == nil {
		t.Error("p=0 should error")
	}
}

func TestStreamTriad(t *testing.T) {
	res, err := StreamTriad(1<<20, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rates) != 3 {
		t.Fatalf("reps = %d", len(res.Rates))
	}
	// Sanity: measured bandwidth between 100 MB/s and 10 TB/s.
	if res.BestRate < 1e8 || res.BestRate > 1e13 {
		t.Errorf("best rate %g B/s implausible", res.BestRate)
	}
	if res.WorstRate > res.BestRate {
		t.Error("worst > best")
	}
	if res.Bytes != 24*(1<<20) {
		t.Errorf("bytes = %d", res.Bytes)
	}
	if _, err := StreamTriad(10, 1, 1); err == nil {
		t.Error("tiny array should error")
	}
}

func TestSimulatePiWeakScaling(t *testing.T) {
	pc := PiScalingConfig{
		Base:        5 * time.Millisecond,
		Serial:      0.01,
		ReduceBytes: 8,
		Mode:        WeakScaling,
	}
	ps := []int{1, 2, 4, 8, 16}
	points, _, err := SimulatePiScaling(cluster.PizDaint(), pc, ps, 5, 21)
	if err != nil {
		t.Fatal(err)
	}
	// Weak scaling: time stays nearly flat (within overheads + noise).
	base := points[0].Time
	for _, pt := range points {
		if pt.Time < base*95/100 {
			t.Errorf("p=%d: weak-scaling time %v below base %v", pt.P, pt.Time, base)
		}
		if pt.Time > base*130/100 {
			t.Errorf("p=%d: weak-scaling time %v far above base %v (overheads too large)",
				pt.P, pt.Time, base)
		}
		// Efficiency (stored in Speedup) near 1.
		if pt.Speedup < 0.75 || pt.Speedup > 1.02 {
			t.Errorf("p=%d: weak-scaling efficiency %.3f", pt.P, pt.Speedup)
		}
	}
	if StrongScaling.String() == "" || WeakScaling.String() == "" {
		t.Error("mode names")
	}
}
