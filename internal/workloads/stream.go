package workloads

import (
	"errors"
	"runtime"
	"sync"
	"time"
)

// StreamResult reports one STREAM-style kernel measurement: the achieved
// memory bandwidth in bytes/second for each repetition.
type StreamResult struct {
	Kernel    string
	Bytes     int       // bytes moved per repetition
	Rates     []float64 // B/s per repetition
	BestRate  float64   // maximum (the STREAM convention)
	WorstRate float64
}

// StreamTriad runs the STREAM triad kernel a[i] = b[i] + s·c[i] on real
// memory with `workers` goroutines, `reps` times, and returns the
// measured bandwidths. It is the §5.1 microbenchmark used to calibrate
// the memory-bandwidth feature of a machine model when the vendor's
// analytic peak is unreachable. n is the per-array element count.
func StreamTriad(n, workers, reps int) (StreamResult, error) {
	if n < 1024 {
		return StreamResult{}, errors.New("workloads: array too small to time")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if reps < 1 {
		reps = 1
	}
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range b {
		b[i] = 1.0
		c[i] = 2.0
	}
	const scalar = 3.0
	// 3 arrays × 8 bytes touched per element (2 reads + 1 write).
	bytes := 24 * n

	res := StreamResult{Kernel: "triad", Bytes: bytes}
	for r := 0; r < reps; r++ {
		start := time.Now()
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, n)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				aa, bb, cc := a[lo:hi], b[lo:hi], c[lo:hi]
				for i := range aa {
					aa[i] = bb[i] + scalar*cc[i]
				}
			}(lo, hi)
		}
		wg.Wait()
		el := time.Since(start).Seconds()
		if el <= 0 {
			el = 1e-9
		}
		res.Rates = append(res.Rates, float64(bytes)/el)
	}
	res.BestRate = res.Rates[0]
	res.WorstRate = res.Rates[0]
	for _, v := range res.Rates[1:] {
		if v > res.BestRate {
			res.BestRate = v
		}
		if v < res.WorstRate {
			res.WorstRate = v
		}
	}
	// Keep the result observable so the loop cannot be optimized away.
	if a[0] != 7.0 {
		return StreamResult{}, errors.New("workloads: triad produced wrong value")
	}
	return res, nil
}
