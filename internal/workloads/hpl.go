package workloads

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/desim"
)

// HPLConfig describes a distributed High-Performance-Linpack-style run on
// the simulated cluster: problem size N, block size NB, and a P×Q process
// grid. The execution model follows HPL's structure — for each of the
// N/NB panels: factor the panel (one process column), broadcast it, then
// update the trailing submatrix on all processes — with all compute and
// communication times drawn from the machine's noise models.
type HPLConfig struct {
	N  int // matrix dimension
	NB int // panel width
	P  int // process-grid rows
	Q  int // process-grid cols

	// RunSigma models run-to-run system-state variability (different
	// batch allocations, global network load): each run in HPLSeries is
	// scaled by an exp(RunSigma·Z) factor. The paper ran each HPL
	// experiment in a fresh allocation, which dominates the ≈20% spread
	// of Fig 1. Zero disables the effect.
	RunSigma float64
	// RunSkew adds a one-sided exp(RunSkew·|Z|) slowdown per run —
	// congestion and bad placements only ever delay, producing the
	// right-skewed completion-time distribution of Fig 1.
	RunSkew float64
}

// lookahead is the fraction of panel-factorization time that remains on
// the critical path: HPL overlaps factorization of panel k+1 with the
// trailing update of panel k (the "lookahead" optimization), hiding most
// of the serialized work.
const lookahead = 0.3

// Ranks returns the number of processes the grid needs.
func (c HPLConfig) Ranks() int { return c.P * c.Q }

// Validate checks the configuration.
func (c HPLConfig) Validate() error {
	if c.N <= 0 || c.NB <= 0 || c.P <= 0 || c.Q <= 0 {
		return errors.New("workloads: HPL config fields must be positive")
	}
	if c.NB > c.N {
		return fmt.Errorf("workloads: NB %d > N %d", c.NB, c.N)
	}
	return nil
}

// HPLResult is one simulated HPL run.
type HPLResult struct {
	Completion time.Duration // wall time of the slowest process
	Flops      float64       // credited operation count (2/3·N³ + 3/2·N²)
}

// TflopRate returns the achieved rate in Tflop/s.
func (r HPLResult) TflopRate() float64 {
	if r.Completion <= 0 {
		return 0
	}
	return r.Flops / r.Completion.Seconds() / 1e12
}

// RunHPL simulates one HPL execution on the machine. The machine must
// have exactly cfg.Ranks() ranks. The panel loop is executed on the
// discrete-event engine: each process's trailing update for panel k may
// start only after it received panel k and finished its panel k−1 work,
// so a slow process (noise, daemons) delays its column/row neighbours the
// way real HPL runs lose performance to system noise.
func RunHPL(m *cluster.Machine, cfg HPLConfig) (HPLResult, error) {
	if err := cfg.Validate(); err != nil {
		return HPLResult{}, err
	}
	if m.Ranks() != cfg.Ranks() {
		return HPLResult{}, fmt.Errorf("workloads: machine has %d ranks, grid needs %d",
			m.Ranks(), cfg.Ranks())
	}
	ranks := cfg.Ranks()
	panels := cfg.N / cfg.NB

	// The panel pipeline gates each rank's update on its own broadcast
	// arrival, so summary-mode collectives are not enough here.
	defer m.ExactPerRank()()

	eng := new(desim.Engine)
	// free[r] is the simulated time when rank r finished all assigned
	// work so far; the event engine orders the per-panel dependencies.
	free := make([]time.Duration, ranks)

	nf := float64(cfg.N)
	nbf := float64(cfg.NB)
	for k := 0; k < panels; k++ {
		k := k
		remaining := nf - float64(k)*nbf
		if remaining <= 0 {
			break
		}
		// Panel factorization: the owning column does ~remaining·NB²
		// flops; it is serialized on the owner.
		owner := k % ranks
		factorFlops := remaining * nbf * nbf / 2

		// Trailing update per process: the 2·remaining²·NB flops of the
		// rank-NB update, split across the grid.
		updateFlops := 2 * remaining * remaining * nbf / float64(ranks)

		eng.At(free[owner], func(e *desim.Engine) {
			// Factor on the owner; only the non-overlapped fraction of
			// the factorization blocks the pipeline (lookahead).
			start := free[owner]
			dur := m.ComputeTime(owner, lookahead*factorFlops, start)
			factorDone := start + dur

			// Broadcast the panel (NB·remaining/P doubles ≈ payload per
			// process column; modeled as one collective of the panel).
			payload := int(nbf * remaining / float64(cfg.P) * 8)
			bc := m.Bcast(payload, nil)

			// Every rank updates once it has the panel and is free.
			for r := 0; r < ranks; r++ {
				avail := factorDone + bc.PerRank[r]
				if free[r] > avail {
					avail = free[r]
				}
				free[r] = avail + m.ComputeTime(r, updateFlops, avail)
			}
		})
		// Ensure the loop's next panel sees the updated owner time: run
		// the engine to this panel's completion before scheduling more.
		eng.Run()
	}

	var maxT time.Duration
	for _, t := range free {
		if t > maxT {
			maxT = t
		}
	}
	// The solve phase (O(N²)) adds a small coda on the critical path.
	solve := m.ComputeTime(0, 2*nf*nf, maxT)
	maxT += solve
	return HPLResult{Completion: maxT, Flops: LUFlops(cfg.N)}, nil
}

// HPLSeries runs `runs` back-to-back HPL executions (advancing machine
// time between runs so time-correlated noise decorrelates, and applying
// the per-run allocation factor when cfg.RunSigma > 0) and returns the
// completion times in seconds — the dataset behind Figure 1.
func HPLSeries(m *cluster.Machine, cfg HPLConfig, runs int) ([]float64, []HPLResult, error) {
	times := make([]float64, 0, runs)
	results := make([]HPLResult, 0, runs)
	for i := 0; i < runs; i++ {
		res, err := RunHPL(m, cfg)
		if err != nil {
			return nil, nil, err
		}
		factor := 1.0
		if cfg.RunSigma > 0 {
			factor *= m.Lognormal(cfg.RunSigma)
		}
		if cfg.RunSkew > 0 {
			factor *= m.HalfLognormal(cfg.RunSkew)
		}
		res.Completion = time.Duration(float64(res.Completion) * factor)
		times = append(times, res.Completion.Seconds())
		results = append(results, res)
		m.Advance(res.Completion + time.Second)
	}
	return times, results, nil
}
