package workloads

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/stats"
)

// piDefaultWorkers is the fixed default term split. It is deliberately a
// constant, NOT runtime.GOMAXPROCS: the round-robin split in
// atanInvParallel decides the big-float reduction order, and a
// host-dependent default would make the rounded digits depend on the
// machine's core count — exactly the silent harness nondeterminism
// Rule 9 exists to prevent. Callers who want more parallelism pass
// workers explicitly; the digits are worker-count invariant regardless
// (see TestComputePiDigitsWorkerInvariance).
const piDefaultWorkers = 4

// ComputePiDigits really computes π to the requested number of decimal
// digits using the Machin formula π/4 = 4·atan(1/5) − atan(1/239) with
// big-float arithmetic, splitting the series terms across `workers`
// goroutines. It is the computational content of the paper's Fig 7
// scaling example ("calculating digits of Pi ... fully parallel until the
// execution of a single reduction").
func ComputePiDigits(digits, workers int) (string, error) {
	if digits < 1 || digits > 100000 {
		return "", errors.New("workloads: digits out of range [1, 100000]")
	}
	if workers < 1 {
		workers = piDefaultWorkers
	}
	prec := uint(float64(digits)*3.33) + 64

	pi := new(big.Float).SetPrec(prec)
	a := atanInvParallel(5, prec, workers)
	b := atanInvParallel(239, prec, workers)
	a.Mul(a, big.NewFloat(4).SetPrec(prec))
	pi.Sub(a, b)
	pi.Mul(pi, big.NewFloat(4).SetPrec(prec))

	s := pi.Text('f', digits)
	return s, nil
}

// atanInvParallel computes atan(1/x) by the Gregory series
// Σ (−1)^k / ((2k+1)·x^(2k+1)), with the terms distributed round-robin
// over workers and summed with a final reduction — the "fully parallel
// until a single reduction" structure of the paper's example.
func atanInvParallel(x int64, prec uint, workers int) *big.Float {
	// Number of terms: each term shrinks by x², so we need about
	// prec·ln2 / (2·ln x) terms.
	terms := int(float64(prec)*0.6932/(2*math.Log(float64(x)))) + 2

	partials := make([]*big.Float, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum := new(big.Float).SetPrec(prec)
			xb := new(big.Float).SetPrec(prec).SetInt64(x)
			x2 := new(big.Float).SetPrec(prec).Mul(xb, xb)
			// Start at term w: 1/x^(2w+1).
			pow := new(big.Float).SetPrec(prec).SetInt64(1)
			pow.Quo(pow, xb)
			for i := 0; i < w; i++ {
				pow.Quo(pow, x2)
			}
			// Stride x^(2·workers).
			stride := new(big.Float).SetPrec(prec).SetInt64(1)
			for i := 0; i < workers; i++ {
				stride.Mul(stride, x2)
			}
			term := new(big.Float).SetPrec(prec)
			den := new(big.Float).SetPrec(prec)
			for k := w; k < terms; k += workers {
				den.SetInt64(int64(2*k + 1))
				term.Quo(pow, den)
				if k%2 == 0 {
					sum.Add(sum, term)
				} else {
					sum.Sub(sum, term)
				}
				pow.Quo(pow, stride)
			}
			partials[w] = sum
		}()
	}
	wg.Wait()
	// Final reduction.
	total := new(big.Float).SetPrec(prec)
	for _, p := range partials {
		total.Add(total, p)
	}
	return total
}

// ScalingMode distinguishes strong scaling (constant problem size) from
// weak scaling (problem size grown with p) — §4.2 requires papers to
// state which one they measured and, for weak scaling, the growth
// function (linear in p here).
type ScalingMode int

const (
	// StrongScaling keeps the total work constant as p grows.
	StrongScaling ScalingMode = iota
	// WeakScaling grows the parallel work linearly with p, so the
	// per-process work (and ideally the execution time) stays constant.
	WeakScaling
)

// String returns the scaling-mode name.
func (s ScalingMode) String() string {
	if s == WeakScaling {
		return "weak scaling (linear problem growth)"
	}
	return "strong scaling (constant problem size)"
}

// PiScalingConfig parametrizes the simulated Fig 7 strong-scaling study:
// a perfectly parallel compute phase of (1−Serial)·Base, a serial
// initialization of Serial·Base, and a final reduction executed on the
// simulated machine.
type PiScalingConfig struct {
	Base        time.Duration // single-process execution time (paper: 20 ms)
	Serial      float64       // serial fraction b (paper: 0.01)
	ReduceBytes int           // payload of the final reduction
	Mode        ScalingMode   // strong (default, Fig 7) or weak
}

// PiScalingPoint is one measured scaling configuration. Under strong
// scaling, Speedup is T(1)/T(p); under weak scaling the same quotient is
// the weak-scaling *efficiency* (1 = perfect, ideally flat time).
type PiScalingPoint struct {
	P       int
	Time    time.Duration
	Speedup float64
}

// SimulatePiScaling measures the strong-scaling curve on fresh machines
// with 1..maxP processes, repeating each configuration `reps` times and
// keeping the per-configuration median (plus all raw samples for CI
// computation). It returns one point per process count and the raw
// samples indexed [pIdx][rep] in seconds.
func SimulatePiScaling(cfg cluster.Config, pc PiScalingConfig, ps []int, reps int, seed uint64) ([]PiScalingPoint, [][]float64, error) {
	if pc.Base <= 0 || pc.Serial < 0 || pc.Serial > 1 {
		return nil, nil, errors.New("workloads: bad Pi scaling config")
	}
	if reps < 1 {
		reps = 1
	}
	points := make([]PiScalingPoint, 0, len(ps))
	raw := make([][]float64, 0, len(ps))
	var base float64
	for idx, p := range ps {
		if p < 1 {
			return nil, nil, fmt.Errorf("workloads: process count %d", p)
		}
		m, err := cluster.New(cfg, p, seed+uint64(idx)*7919)
		if err != nil {
			return nil, nil, err
		}
		samples := make([]float64, 0, reps)
		flopsSerial := pc.Serial * pc.Base.Seconds() * cfg.FlopsPerSec
		flopsParallel := (1 - pc.Serial) * pc.Base.Seconds() * cfg.FlopsPerSec / float64(p)
		if pc.Mode == WeakScaling {
			// Problem grows linearly with p: per-process work constant.
			flopsParallel = (1 - pc.Serial) * pc.Base.Seconds() * cfg.FlopsPerSec
		}
		for rep := 0; rep < reps; rep++ {
			// Serial init on rank 0.
			t := m.ComputeTime(0, flopsSerial, m.Now())
			// Parallel phase: every rank computes its slice; the phase
			// ends when the slowest rank finishes.
			var slowest time.Duration
			for r := 0; r < p; r++ {
				d := m.ComputeTime(r, flopsParallel, m.Now()+t)
				if d > slowest {
					slowest = d
				}
			}
			t += slowest
			// Final reduction.
			if p > 1 {
				red := m.Reduce(pc.ReduceBytes, nil)
				t += red.Root
			}
			samples = append(samples, t.Seconds())
			m.Advance(t + time.Millisecond)
		}
		med := stats.Median(samples)
		points = append(points, PiScalingPoint{P: p, Time: time.Duration(med * float64(time.Second))})
		raw = append(raw, samples)
		if p == 1 {
			// Use the rounded duration so speedup(p=1) is exactly 1.
			base = points[len(points)-1].Time.Seconds()
		}
	}
	// Speedups relative to the single-process base case (Rule 1: report
	// the absolute base-case performance alongside).
	if base > 0 {
		for i := range points {
			points[i].Speedup = base / points[i].Time.Seconds()
		}
	}
	return points, raw, nil
}
