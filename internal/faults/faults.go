// Package faults injects the adversarial conditions the paper warns
// about (§4.2, Figs. 2–4) into the simulated cluster: straggler nodes,
// windowed interference bursts, message loss with retransmission, rank
// crashes, and NTP-style clock steps that violate the delay-window
// synchronization assumptions of §4.2.1. A Schedule is pure data —
// deterministic given the machine's seeded random stream — so every
// fault-corrupted experiment still reproduces bit-for-bit.
//
// The schedule answers point-in-(simulated)-time queries; the cluster
// package consults it on every message, compute phase, and clock
// reading. The measurement layer (internal/bench) is where faults turn
// into lost samples, retries, and contamination flags.
package faults

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// Telemetry: injected-fault volume, counted at the moment each fault
// actually fires (internal/telemetry; pure counters, no RNG access).
var (
	telRetransmits = telemetry.Default().Counter("faults.retransmits")
	telCrashWaits  = telemetry.Default().Counter("faults.crash_waits")
)

// Straggler pins a persistent slowdown onto one node: every message the
// node sends or receives and every compute phase it runs is stretched by
// Factor while the straggler is active. This models a failing fan, a
// thermally throttled socket, or a node sharing its link with a noisy
// neighbour — the persistent heterogeneity of Fig 6.
type Straggler struct {
	Node   int           // node index (see cluster placement)
	Factor float64       // slowdown multiplier (> 1)
	Start  time.Duration // activation, in global simulated time
	End    time.Duration // deactivation (0 = active forever after Start)
}

// ActiveAt reports whether the straggler affects time at.
func (s Straggler) ActiveAt(at time.Duration) bool {
	if at < s.Start {
		return false
	}
	return s.End <= 0 || at < s.End
}

// Burst is a transient interference window multiplying inter-node
// message latency by Factor — congestion from a co-scheduled job, the
// heavy-tailed network interference of Figs. 2–4 made episodic.
type Burst struct {
	Start    time.Duration // first window start, in global simulated time
	Duration time.Duration // window length
	Factor   float64       // latency multiplier inside the window (> 1)
	Period   time.Duration // repeat cadence (0 = one-shot)
}

// ActiveAt reports whether time at falls inside an interference window.
func (b Burst) ActiveAt(at time.Duration) bool {
	if b.Duration <= 0 || at < b.Start {
		return false
	}
	since := at - b.Start
	if b.Period > 0 {
		since %= b.Period
	}
	return since < b.Duration
}

// Loss models message loss with a timeout-and-retransmit protocol: each
// network message is lost with probability Prob; every loss costs the
// sender the current retransmit timeout, which grows by factor Backoff
// (exponential backoff), all in simulated time. After MaxRetries
// retransmissions the reliability layer delivers on the final attempt —
// transports do not lose messages forever, they just get very slow,
// which is exactly the heavy tail a naive harness averages away.
type Loss struct {
	Prob       float64       // per-message loss probability, in [0, 1)
	Timeout    time.Duration // initial retransmit timeout (default 100µs)
	Backoff    float64       // timeout growth per retry (default 2)
	MaxRetries int           // retransmissions before the final attempt (default 5)
}

func (l Loss) timeout() time.Duration {
	if l.Timeout <= 0 {
		return 100 * time.Microsecond
	}
	return l.Timeout
}

func (l Loss) backoff() float64 {
	if l.Backoff <= 1 {
		return 2
	}
	return l.Backoff
}

func (l Loss) maxRetries() int {
	if l.MaxRetries <= 0 {
		return 5
	}
	return l.MaxRetries
}

// Crash removes a rank from the computation: from time At on, messages
// to or from the rank are never answered, and any peer waiting on it
// blocks for the schedule's CrashTimeout before giving up.
type Crash struct {
	Rank int
	At   time.Duration // global simulated time of the failure
}

// ClockStep is an NTP-style step: at global time At, rank Rank's local
// clock jumps by Step (positive or negative). Delay-window
// synchronization performed before the step is silently wrong after it —
// the §4.2.1 assumption violation this package exists to exercise.
type ClockStep struct {
	Rank int
	At   time.Duration
	Step time.Duration
}

// Schedule is a complete deterministic fault plan for one simulated
// machine. The zero value injects nothing.
type Schedule struct {
	Stragglers []Straggler
	Bursts     []Burst
	Loss       *Loss
	Crashes    []Crash
	ClockSteps []ClockStep

	// CrashTimeout is how long a sender blocks on a crashed peer before
	// the simulated runtime declares the message undeliverable
	// (default 10ms — enormous next to µs-scale message latencies, so
	// crashed-rank samples are unmistakable outliers).
	CrashTimeout time.Duration
}

// Errors returned by Validate.
var ErrBadSchedule = errors.New("faults: invalid schedule")

// Validate checks the schedule for nonsensical parameters. Factors must
// exceed 1 (a "slowdown" below 1 would be a speedup), probabilities must
// lie in [0, 1), and ranks/nodes must be non-negative.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, st := range s.Stragglers {
		if st.Factor <= 1 {
			return fmt.Errorf("%w: straggler %d factor %g must be > 1", ErrBadSchedule, i, st.Factor)
		}
		if st.Node < 0 {
			return fmt.Errorf("%w: straggler %d node %d must be >= 0", ErrBadSchedule, i, st.Node)
		}
		if st.End > 0 && st.End <= st.Start {
			return fmt.Errorf("%w: straggler %d window [%v, %v) is empty", ErrBadSchedule, i, st.Start, st.End)
		}
	}
	for i, b := range s.Bursts {
		if b.Factor <= 1 {
			return fmt.Errorf("%w: burst %d factor %g must be > 1", ErrBadSchedule, i, b.Factor)
		}
		if b.Duration <= 0 {
			return fmt.Errorf("%w: burst %d duration %v must be positive", ErrBadSchedule, i, b.Duration)
		}
		if b.Period > 0 && b.Period < b.Duration {
			return fmt.Errorf("%w: burst %d period %v shorter than duration %v", ErrBadSchedule, i, b.Period, b.Duration)
		}
	}
	if l := s.Loss; l != nil {
		if l.Prob < 0 || l.Prob >= 1 {
			return fmt.Errorf("%w: loss probability %g outside [0, 1)", ErrBadSchedule, l.Prob)
		}
		if l.Timeout < 0 || l.MaxRetries < 0 {
			return fmt.Errorf("%w: negative loss timeout or retry count", ErrBadSchedule)
		}
	}
	for i, c := range s.Crashes {
		if c.Rank < 0 {
			return fmt.Errorf("%w: crash %d rank %d must be >= 0", ErrBadSchedule, i, c.Rank)
		}
	}
	for i, cs := range s.ClockSteps {
		if cs.Rank < 0 {
			return fmt.Errorf("%w: clock step %d rank %d must be >= 0", ErrBadSchedule, i, cs.Rank)
		}
		if cs.Step == 0 {
			return fmt.Errorf("%w: clock step %d has zero step", ErrBadSchedule, i)
		}
	}
	return nil
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool {
	return s == nil || (len(s.Stragglers) == 0 && len(s.Bursts) == 0 &&
		s.Loss == nil && len(s.Crashes) == 0 && len(s.ClockSteps) == 0)
}

// SlowdownAt returns the combined straggler slowdown factor for a node
// at simulated time at (1 when unaffected). Overlapping stragglers on
// the same node compound multiplicatively.
func (s *Schedule) SlowdownAt(node int, at time.Duration) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, st := range s.Stragglers {
		if st.Node == node && st.ActiveAt(at) {
			f *= st.Factor
		}
	}
	return f
}

// BurstFactorAt returns the combined interference multiplier on
// inter-node latency at simulated time at (1 outside all windows).
func (s *Schedule) BurstFactorAt(at time.Duration) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, b := range s.Bursts {
		if b.ActiveAt(at) {
			f *= b.Factor
		}
	}
	return f
}

// CrashedAt reports whether the rank has failed by simulated time at.
func (s *Schedule) CrashedAt(rank int, at time.Duration) bool {
	if s == nil {
		return false
	}
	for _, c := range s.Crashes {
		if c.Rank == rank && at >= c.At {
			return true
		}
	}
	return false
}

// CrashWait returns the timeout a peer pays waiting on a crashed rank.
func (s *Schedule) CrashWait() time.Duration {
	telCrashWaits.Inc()
	if s == nil || s.CrashTimeout <= 0 {
		return 10 * time.Millisecond
	}
	return s.CrashTimeout
}

// ClockShift returns the cumulative clock-step displacement of a rank's
// clock at simulated time at.
func (s *Schedule) ClockShift(rank int, at time.Duration) time.Duration {
	if s == nil {
		return 0
	}
	var shift time.Duration
	for _, cs := range s.ClockSteps {
		if cs.Rank == rank && at >= cs.At {
			shift += cs.Step
		}
	}
	return shift
}

// FloatSource is a uniform [0,1) draw source. Taking an interface
// rather than a func() float64 lets hot paths pass their existing
// stream (the machine's *rand.Rand or a per-rank *rng.Stream) without
// allocating a bound-method closure per message.
type FloatSource interface {
	Float64() float64
}

// RetransmitDelay rolls the loss protocol for one message using src, a
// uniform [0,1) source (a seeded deterministic stream), and returns the
// total retransmission wait added to the message's delivery plus the
// number of retransmissions performed. A nil receiver or absent Loss
// model returns (0, 0) without consuming draws.
func (s *Schedule) RetransmitDelay(src FloatSource) (time.Duration, int) {
	if s == nil || s.Loss == nil || s.Loss.Prob <= 0 {
		return 0, 0
	}
	l := s.Loss
	var wait time.Duration
	timeout := l.timeout()
	retries := 0
	for retries < l.maxRetries() && src.Float64() < l.Prob {
		wait += timeout
		timeout = time.Duration(float64(timeout) * l.backoff())
		retries++
	}
	if retries > 0 {
		telRetransmits.Add(int64(retries))
	}
	return wait, retries
}

// String summarizes the schedule for reports (Rule 9: document the
// complete experimental setup, including injected faults).
func (s *Schedule) String() string {
	if s.Empty() {
		return "no faults"
	}
	var parts []string
	for _, st := range s.Stragglers {
		w := "forever"
		if st.End > 0 {
			w = fmt.Sprintf("until %v", st.End)
		}
		parts = append(parts, fmt.Sprintf("straggler node %d ×%.3g from %v %s", st.Node, st.Factor, st.Start, w))
	}
	for _, b := range s.Bursts {
		cadence := "once"
		if b.Period > 0 {
			cadence = fmt.Sprintf("every %v", b.Period)
		}
		parts = append(parts, fmt.Sprintf("burst ×%.3g for %v from %v %s", b.Factor, b.Duration, b.Start, cadence))
	}
	if l := s.Loss; l != nil && l.Prob > 0 {
		parts = append(parts, fmt.Sprintf("loss p=%.3g timeout %v backoff ×%.3g ≤%d retries",
			l.Prob, l.timeout(), l.backoff(), l.maxRetries()))
	}
	for _, c := range s.Crashes {
		parts = append(parts, fmt.Sprintf("rank %d crashes at %v", c.Rank, c.At))
	}
	for _, cs := range s.ClockSteps {
		parts = append(parts, fmt.Sprintf("rank %d clock steps %+v at %v", cs.Rank, cs.Step, cs.At))
	}
	return strings.Join(parts, "; ")
}
