package faults

import (
	"errors"
	"math/rand/v2"
	"strings"
	"testing"
	"time"
)

func TestStragglerWindows(t *testing.T) {
	s := &Schedule{Stragglers: []Straggler{
		{Node: 1, Factor: 3, Start: time.Millisecond, End: 2 * time.Millisecond},
		{Node: 1, Factor: 2, Start: 0}, // forever
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.SlowdownAt(1, 0); got != 2 {
		t.Errorf("before window: %g, want 2", got)
	}
	if got := s.SlowdownAt(1, 1500*time.Microsecond); got != 6 {
		t.Errorf("overlap must compound: %g, want 6", got)
	}
	if got := s.SlowdownAt(1, 3*time.Millisecond); got != 2 {
		t.Errorf("after window: %g, want 2", got)
	}
	if got := s.SlowdownAt(0, time.Millisecond); got != 1 {
		t.Errorf("unaffected node: %g, want 1", got)
	}
}

func TestBurstPeriodicity(t *testing.T) {
	b := Burst{Start: time.Millisecond, Duration: 100 * time.Microsecond,
		Factor: 5, Period: time.Millisecond}
	cases := []struct {
		at   time.Duration
		want bool
	}{
		{0, false},
		{time.Millisecond, true},
		{time.Millisecond + 99*time.Microsecond, true},
		{time.Millisecond + 100*time.Microsecond, false},
		{2 * time.Millisecond, true}, // next period
		{2*time.Millisecond + 500*time.Microsecond, false},
	}
	for _, c := range cases {
		if got := b.ActiveAt(c.at); got != c.want {
			t.Errorf("ActiveAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	oneShot := Burst{Start: time.Millisecond, Duration: 100 * time.Microsecond, Factor: 5}
	if oneShot.ActiveAt(2 * time.Millisecond) {
		t.Error("one-shot burst must not repeat")
	}
	s := &Schedule{Bursts: []Burst{b}}
	if got := s.BurstFactorAt(time.Millisecond); got != 5 {
		t.Errorf("burst factor = %g, want 5", got)
	}
}

func TestCrashAndClockShift(t *testing.T) {
	s := &Schedule{
		Crashes:    []Crash{{Rank: 2, At: time.Millisecond}},
		ClockSteps: []ClockStep{{Rank: 1, At: time.Millisecond, Step: 200 * time.Microsecond}},
	}
	if s.CrashedAt(2, 0) {
		t.Error("crashed before failure time")
	}
	if !s.CrashedAt(2, time.Millisecond) {
		t.Error("not crashed at failure time")
	}
	if s.CrashedAt(1, time.Hour) {
		t.Error("wrong rank crashed")
	}
	if got := s.ClockShift(1, 0); got != 0 {
		t.Errorf("shift before step: %v", got)
	}
	if got := s.ClockShift(1, 2*time.Millisecond); got != 200*time.Microsecond {
		t.Errorf("shift after step: %v", got)
	}
	if got := s.CrashWait(); got != 10*time.Millisecond {
		t.Errorf("default crash wait = %v", got)
	}
}

func TestRetransmitDelayDeterministic(t *testing.T) {
	s := &Schedule{Loss: &Loss{Prob: 0.5, Timeout: 10 * time.Microsecond, Backoff: 2, MaxRetries: 3}}
	roll := func(seed uint64) (time.Duration, int) {
		rng := rand.New(rand.NewPCG(seed, 7))
		return s.RetransmitDelay(rng)
	}
	w1, r1 := roll(42)
	w2, r2 := roll(42)
	if w1 != w2 || r1 != r2 {
		t.Errorf("same seed must reproduce: (%v,%d) vs (%v,%d)", w1, r1, w2, r2)
	}
	// Exponential backoff: k retries wait 10+20+...+10·2^(k−1) µs.
	rng := rand.New(rand.NewPCG(1, 1))
	sawRetry := false
	for i := 0; i < 200; i++ {
		w, r := s.RetransmitDelay(rng)
		if r > 0 {
			sawRetry = true
			want := time.Duration(0)
			timeout := 10 * time.Microsecond
			for k := 0; k < r; k++ {
				want += timeout
				timeout *= 2
			}
			if w != want {
				t.Fatalf("retries=%d wait=%v, want %v", r, w, want)
			}
		}
		if r > 3 {
			t.Fatalf("retries %d exceed MaxRetries", r)
		}
	}
	if !sawRetry {
		t.Error("p=0.5 never lost a message in 200 rolls")
	}
	// No loss model: no draws consumed, zero delay.
	var empty *Schedule
	if w, r := empty.RetransmitDelay(mustNotDraw{t}); w != 0 || r != 0 {
		t.Error("nil schedule must be free")
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	bad := []*Schedule{
		{Stragglers: []Straggler{{Node: 0, Factor: 0.5}}},
		{Stragglers: []Straggler{{Node: -1, Factor: 2}}},
		{Stragglers: []Straggler{{Node: 0, Factor: 2, Start: 2 * time.Millisecond, End: time.Millisecond}}},
		{Bursts: []Burst{{Factor: 1, Duration: time.Millisecond}}},
		{Bursts: []Burst{{Factor: 2, Duration: 0}}},
		{Bursts: []Burst{{Factor: 2, Duration: time.Millisecond, Period: time.Microsecond}}},
		{Loss: &Loss{Prob: 1.5}},
		{Loss: &Loss{Prob: -0.1}},
		{Crashes: []Crash{{Rank: -3}}},
		{ClockSteps: []ClockStep{{Rank: 0, Step: 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrBadSchedule) {
			t.Errorf("schedule %d: err = %v, want ErrBadSchedule", i, err)
		}
	}
	var nilSched *Schedule
	if err := nilSched.Validate(); err != nil {
		t.Errorf("nil schedule must validate: %v", err)
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		s, err := Preset(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if s.Empty() {
			t.Errorf("preset %q is empty", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if s.String() == "no faults" {
			t.Errorf("preset %q has no description", name)
		}
	}
	if s, err := Preset(""); err != nil || s != nil {
		t.Error("empty preset must be nil, nil")
	}
	if s, err := Preset("none"); err != nil || s != nil {
		t.Error("preset none must be nil, nil")
	}
	if _, err := Preset("tsunami"); err == nil {
		t.Error("unknown preset must error")
	}
	merged, err := Preset("straggler, loss")
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Stragglers) != 1 || merged.Loss == nil {
		t.Errorf("merged preset incomplete: %+v", merged)
	}
	// Presets are fresh copies: mutating one must not leak into the next.
	a, _ := Preset("straggler")
	a.Stragglers[0].Factor = 99
	b, _ := Preset("straggler")
	if b.Stragglers[0].Factor == 99 {
		t.Error("preset mutation leaked")
	}
}

func TestScheduleString(t *testing.T) {
	var nilSched *Schedule
	if nilSched.String() != "no faults" {
		t.Error("nil schedule description")
	}
	s, _ := Preset("storm")
	desc := s.String()
	for _, want := range []string{"straggler", "burst", "loss"} {
		if !strings.Contains(desc, want) {
			t.Errorf("storm description %q missing %q", desc, want)
		}
	}
}

// mustNotDraw fails the test if any draw is consumed.
type mustNotDraw struct{ t *testing.T }

func (m mustNotDraw) Float64() float64 { m.t.Fatal("must not draw"); return 0 }
