package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// The presets are sized for the simulated systems' µs-scale message
// latencies (internal/cluster presets): bursts and straggler onsets land
// mid-campaign for typical 100–1000-sample latency benchmarks, so they
// corrupt a prefix-clean sample — the hardest case for naive harnesses
// and the one the change-point detector must catch.

// presetBuilders maps preset names to constructors. Constructed fresh on
// every call so callers can mutate their schedule freely.
var presetBuilders = map[string]func() *Schedule{
	"straggler": func() *Schedule {
		return &Schedule{
			// Node 0 hosts rank 0 under packed placement; slowing it
			// stretches every message the benchmark sends. Onset is
			// mid-campaign so the sample stream shifts regime.
			Stragglers: []Straggler{{Node: 0, Factor: 3, Start: 2 * time.Millisecond}},
		}
	},
	"burst": func() *Schedule {
		return &Schedule{
			Bursts: []Burst{{
				Start:    500 * time.Microsecond,
				Duration: 300 * time.Microsecond,
				Factor:   8,
				Period:   2 * time.Millisecond,
			}},
		}
	},
	"loss": func() *Schedule {
		return &Schedule{
			Loss: &Loss{Prob: 0.02, Timeout: 50 * time.Microsecond, Backoff: 2, MaxRetries: 5},
		}
	},
	"crash": func() *Schedule {
		return &Schedule{
			Crashes:      []Crash{{Rank: 1, At: 5 * time.Millisecond}},
			CrashTimeout: 10 * time.Millisecond,
		}
	},
	"clockstep": func() *Schedule {
		return &Schedule{
			ClockSteps: []ClockStep{{Rank: 1, At: 3 * time.Millisecond, Step: 250 * time.Microsecond}},
		}
	},
	"storm": func() *Schedule {
		return &Schedule{
			Stragglers: []Straggler{{Node: 0, Factor: 2.5, Start: 2 * time.Millisecond}},
			Bursts: []Burst{{
				Start:    500 * time.Microsecond,
				Duration: 200 * time.Microsecond,
				Factor:   6,
				Period:   1500 * time.Microsecond,
			}},
			Loss: &Loss{Prob: 0.01, Timeout: 50 * time.Microsecond, Backoff: 2, MaxRetries: 4},
		}
	},
}

// PresetNames lists the available fault presets in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presetBuilders))
	for n := range presetBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns a fresh copy of a named fault schedule. The empty name
// returns nil (no faults). Comma-separated names merge schedules, e.g.
// "straggler,loss".
func Preset(name string) (*Schedule, error) {
	name = strings.TrimSpace(name)
	if name == "" || name == "none" {
		return nil, nil
	}
	merged := &Schedule{}
	for _, part := range strings.Split(name, ",") {
		part = strings.TrimSpace(part)
		build, ok := presetBuilders[part]
		if !ok {
			return nil, fmt.Errorf("faults: unknown preset %q (have %s)",
				part, strings.Join(PresetNames(), ", "))
		}
		s := build()
		merged.Stragglers = append(merged.Stragglers, s.Stragglers...)
		merged.Bursts = append(merged.Bursts, s.Bursts...)
		merged.Crashes = append(merged.Crashes, s.Crashes...)
		merged.ClockSteps = append(merged.ClockSteps, s.ClockSteps...)
		if s.Loss != nil {
			merged.Loss = s.Loss
		}
		if s.CrashTimeout > merged.CrashTimeout {
			merged.CrashTimeout = s.CrashTimeout
		}
	}
	return merged, nil
}
