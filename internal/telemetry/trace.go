package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/timer"
)

// traceRing bounds how many completed spans the tracer retains for the
// /trace endpoint; the JSONL sink, when set, receives every span.
const traceRing = 1024

// SpanID identifies one span; 0 is "no span" (root).
type SpanID uint64

// Span is one completed interval of harness work. The hierarchy the
// harness emits is campaign → sweep → config → collection → analysis,
// linked by Parent. Timestamps are microseconds on the tracer's
// monotonic clock (internal/timer), not wall-clock dates: spans order
// and subtract reliably but carry no calendar meaning.
type Span struct {
	ID      SpanID `json:"id"`
	Parent  SpanID `json:"parent,omitempty"`
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// SpanSink receives every completed span the tracer records. WriteSpan
// is called serially (under the tracer's lock), so sinks need no
// locking of their own for tracer-driven writes.
type SpanSink interface {
	WriteSpan(Span)
}

// jsonlSink is the classic sink: one JSON line per span.
type jsonlSink struct{ w io.Writer }

func (s jsonlSink) WriteSpan(sp Span) {
	if b, err := json.Marshal(sp); err == nil {
		s.w.Write(append(b, '\n'))
	}
}

// Tracer records hierarchical spans. Disabled (the default) it costs one
// atomic load per instrumentation site and allocates nothing; enabled it
// appends completed spans to a bounded ring and, when a sink is set,
// streams each to it (JSON lines via Enable, or any SpanSink — e.g. the
// chunked binary trace writer — via EnableSink).
type Tracer struct {
	enabled atomic.Bool
	ids     atomic.Uint64
	clock   timer.Clock

	mu   sync.Mutex
	sink SpanSink
	ring []Span
	next int
}

// NewTracer returns a disabled tracer on its own monotonic clock.
func NewTracer() *Tracer {
	return &Tracer{clock: timer.NewWallClock()}
}

// tracer is the process-wide default the harness instruments.
var tracer = NewTracer()

// DefaultTracer returns the process-wide tracer served by /trace.
func DefaultTracer() *Tracer { return tracer }

// Enable arms the tracer. sink, when non-nil, receives every completed
// span as one JSON line; pass nil to keep spans only in the in-memory
// ring (still served by /trace).
func (t *Tracer) Enable(sink io.Writer) {
	if sink == nil {
		t.EnableSink(nil)
		return
	}
	t.EnableSink(jsonlSink{w: sink})
}

// EnableSink arms the tracer with an arbitrary span sink (e.g. a
// BinaryTraceWriter). Pass nil to keep spans only in the in-memory
// ring.
func (t *Tracer) EnableSink(sink SpanSink) {
	t.mu.Lock()
	t.sink = sink
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable stops span collection and detaches the sink. Spans already in
// the ring remain readable.
func (t *Tracer) Disable() {
	t.enabled.Store(false)
	t.mu.Lock()
	t.sink = nil
	t.mu.Unlock()
}

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Recent returns the retained completed spans, oldest first.
func (t *Tracer) Recent() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) == traceRing {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// ActiveSpan is a started, not-yet-ended span. A nil ActiveSpan (the
// disabled tracer's product) is valid: End and ID are no-ops, so
// instrumentation sites stay unconditional.
type ActiveSpan struct {
	t      *Tracer
	span   Span
	start  time.Duration
	closed atomic.Bool
}

// Start begins a span under parent (0 for a root span). Returns nil when
// the tracer is disabled.
func (t *Tracer) Start(parent SpanID, name, detail string) *ActiveSpan {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return &ActiveSpan{
		t: t,
		span: Span{
			ID:     SpanID(t.ids.Add(1)),
			Parent: parent,
			Name:   name,
			Detail: detail,
		},
		start: t.clock.Now(),
	}
}

// ID returns the span's identity for parenting children (0 on nil).
func (a *ActiveSpan) ID() SpanID {
	if a == nil {
		return 0
	}
	return a.span.ID
}

// End completes the span and records it. Safe on nil; a second End is a
// no-op, so deferred and explicit ends may coexist.
func (a *ActiveSpan) End() {
	if a == nil || a.closed.Swap(true) {
		return
	}
	end := a.t.clock.Now()
	a.span.StartUs = int64(a.start / time.Microsecond)
	a.span.DurUs = int64((end - a.start) / time.Microsecond)
	a.t.record(a.span)
}

// record appends one completed span to the ring and the sink.
func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < traceRing {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
		t.next = (t.next + 1) % traceRing
	}
	if t.sink != nil {
		t.sink.WriteSpan(sp)
	}
}

// ctxKey carries the current span through context, so layers nest spans
// without any API change: suite puts its config span into the ctx it
// already passes to bench, and bench's collection span parents under it.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying id as the current span.
func ContextWithSpan(ctx context.Context, id SpanID) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// SpanFromContext returns the current span in ctx (0 when none).
func SpanFromContext(ctx context.Context) SpanID {
	if ctx == nil {
		return 0
	}
	if id, ok := ctx.Value(ctxKey{}).(SpanID); ok {
		return id
	}
	return 0
}

// StartSpan starts a child of ctx's current span on the default tracer
// and returns a context carrying the new span for deeper layers. With
// the tracer disabled it returns ctx unchanged and a nil span — zero
// allocation on the off path.
func StartSpan(ctx context.Context, name, detail string) (context.Context, *ActiveSpan) {
	sp := tracer.Start(SpanFromContext(ctx), name, detail)
	if sp == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, sp.ID()), sp
}

// Us converts a duration to float microseconds — the unit every harness
// histogram records, matching the µs the suite reports measurements in.
func Us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Enable arms the default tracer (see Tracer.Enable).
func Enable(sink io.Writer) { tracer.Enable(sink) }

// EnableSink arms the default tracer with an arbitrary span sink.
func EnableSink(sink SpanSink) { tracer.EnableSink(sink) }

// Disable disarms the default tracer.
func Disable() { tracer.Disable() }

// Enabled reports whether the default tracer is collecting spans.
func Enabled() bool { return tracer.Enabled() }
