package telemetry

import (
	"bytes"
	"io"
	"sync"

	"repro/internal/colenc"
)

// traceMagic is the binary trace format header, mirroring the campaign
// journal's discipline: a sniffable 8-byte magic, then CRC32-framed
// column-major chunks (colenc). A trace is advisory observability data,
// so the reader's torn-tail handling simply drops the unreadable
// suffix.
var traceMagic = []byte("SCITRv2\n")

// traceFlushEvery is how many spans a chunk accumulates before it is
// framed and written.
const traceFlushEvery = 128

// BinaryTraceWriter is a SpanSink that streams spans as chunked binary
// instead of JSON lines: a per-chunk string table for names and details
// (span names repeat heavily — "collection", "analysis", …), varint
// deltas for IDs and start timestamps, varint durations. The same
// encoder as the v2 campaign journal, roughly an order of magnitude
// smaller than the JSONL trace.
type BinaryTraceWriter struct {
	mu      sync.Mutex
	w       io.Writer
	pending []Span
	header  bool
	err     error
}

// NewBinaryTraceWriter returns a writer streaming chunks to w. The
// caller owns w (and closes it after Close).
func NewBinaryTraceWriter(w io.Writer) *BinaryTraceWriter {
	return &BinaryTraceWriter{w: w}
}

// WriteSpan buffers one span, flushing a chunk every traceFlushEvery
// spans. Errors latch: a trace that cannot be written stops consuming
// work (it is observability, not data — dropping it must never stall
// the harness).
func (bw *BinaryTraceWriter) WriteSpan(sp Span) {
	bw.mu.Lock()
	defer bw.mu.Unlock()
	if bw.err != nil {
		return
	}
	bw.pending = append(bw.pending, sp)
	if len(bw.pending) >= traceFlushEvery {
		bw.flushLocked()
	}
}

// Flush writes any buffered spans as a (short) chunk.
func (bw *BinaryTraceWriter) Flush() error {
	bw.mu.Lock()
	defer bw.mu.Unlock()
	bw.flushLocked()
	return bw.err
}

// Close flushes; the underlying writer stays open (the caller owns it).
func (bw *BinaryTraceWriter) Close() error { return bw.Flush() }

func (bw *BinaryTraceWriter) flushLocked() {
	if bw.err == nil && !bw.header {
		if _, err := bw.w.Write(traceMagic); err != nil {
			bw.err = err
			return
		}
		bw.header = true
	}
	if bw.err != nil || len(bw.pending) == 0 {
		return
	}
	frame := colenc.AppendFrame(nil, appendTraceChunk(nil, bw.pending))
	if _, err := bw.w.Write(frame); err != nil {
		bw.err = err
		return
	}
	bw.pending = bw.pending[:0]
}

// appendTraceChunk encodes one self-contained chunk:
//
//	uvarint count
//	string table: uvarint n, then n × (uvarint len, bytes) — every
//	  distinct Name and Detail in the chunk, in first-use order
//	per span: varint Δid (vs previous span, 0 start), uvarint parent,
//	  uvarint name index, uvarint detail index, varint ΔStartUs,
//	  varint DurUs
func appendTraceChunk(dst []byte, spans []Span) []byte {
	dst = colenc.AppendUvarint(dst, uint64(len(spans)))
	idx := make(map[string]uint64)
	var table []string
	intern := func(s string) uint64 {
		if i, ok := idx[s]; ok {
			return i
		}
		i := uint64(len(table))
		idx[s] = i
		table = append(table, s)
		return i
	}
	type enc struct{ name, detail uint64 }
	encs := make([]enc, len(spans))
	for i, sp := range spans {
		encs[i] = enc{intern(sp.Name), intern(sp.Detail)}
	}
	dst = colenc.AppendUvarint(dst, uint64(len(table)))
	for _, s := range table {
		dst = colenc.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	prevID, prevStart := int64(0), int64(0)
	for i, sp := range spans {
		dst = colenc.AppendVarint(dst, int64(sp.ID)-prevID)
		prevID = int64(sp.ID)
		dst = colenc.AppendUvarint(dst, uint64(sp.Parent))
		dst = colenc.AppendUvarint(dst, encs[i].name)
		dst = colenc.AppendUvarint(dst, encs[i].detail)
		dst = colenc.AppendVarint(dst, sp.StartUs-prevStart)
		prevStart = sp.StartUs
		dst = colenc.AppendVarint(dst, sp.DurUs)
	}
	return dst
}

// decodeTraceChunk decodes one CRC-verified chunk payload.
func decodeTraceChunk(payload []byte) ([]Span, bool) {
	d := colenc.NewDec(payload)
	count := d.Uvarint()
	// Each span costs at least one byte per field, so count (like the
	// table size below) is bounded by the remaining payload — capping
	// allocation before a corrupt count can ask for gigabytes.
	if d.Bad() || count > uint64(d.Len()) {
		return nil, false
	}
	ns := d.Uvarint()
	if d.Bad() || ns > uint64(d.Len()) {
		return nil, false
	}
	table := make([]string, ns)
	for i := range table {
		ln := d.Uvarint()
		if d.Bad() || ln > uint64(d.Len()) {
			return nil, false
		}
		table[i] = string(d.Bytes(int(ln)))
	}
	spans := make([]Span, count)
	prevID, prevStart := int64(0), int64(0)
	for i := range spans {
		prevID += d.Varint()
		spans[i].ID = SpanID(prevID)
		spans[i].Parent = SpanID(d.Uvarint())
		ni, di := d.Uvarint(), d.Uvarint()
		if d.Bad() || ni >= uint64(len(table)) || di >= uint64(len(table)) {
			return nil, false
		}
		spans[i].Name = table[ni]
		spans[i].Detail = table[di]
		prevStart += d.Varint()
		spans[i].StartUs = prevStart
		spans[i].DurUs = d.Varint()
	}
	if !d.Done() {
		return nil, false
	}
	return spans, true
}

// IsBinaryTrace sniffs whether data is a binary trace file.
func IsBinaryTrace(data []byte) bool { return bytes.HasPrefix(data, traceMagic) }

// ReadBinaryTrace decodes a binary trace file, returning the spans of
// every whole, CRC-verified chunk. torn reports that a trailing partial
// or corrupt chunk was dropped (the expected shape after a crash). The
// trace file is opened append-mode like the JSONL trace, so a resumed
// campaign concatenates sessions; a repeated magic between chunks is a
// session separator and is skipped.
func ReadBinaryTrace(data []byte) (spans []Span, torn bool) {
	if !bytes.HasPrefix(data, traceMagic) {
		return nil, len(data) > 0
	}
	rest := data[len(traceMagic):]
	for len(rest) > 0 {
		if bytes.HasPrefix(rest, traceMagic) {
			rest = rest[len(traceMagic):]
			continue
		}
		payload, n, ok := colenc.ReadFrame(rest)
		if !ok {
			return spans, true
		}
		chunk, ok := decodeTraceChunk(payload)
		if !ok {
			return spans, true
		}
		spans = append(spans, chunk...)
		rest = rest[n:]
	}
	return spans, false
}
