// Package telemetry is the harness's observability layer: the paper's
// Rule 9 demands that results ship with enough environment and process
// detail to be interpretable, and Hunold & Carpen-Amarie show that
// undocumented harness behaviour is a leading cause of irreproducible
// MPI results. This package makes the harness itself observable — a
// lock-cheap metrics registry (counters, gauges, and streaming
// histograms summarized by the repo's own stats machinery), hierarchical
// spans emitted as an out-of-band JSONL trace with monotonic timestamps
// from internal/timer, and an optional HTTP endpoint serving /metrics,
// /trace, and net/http/pprof.
//
// The hard invariant, enforced by test: telemetry never changes report
// bytes, campaign identity, or RNG positions. Instrumentation only reads
// wall-clock time and writes to its own counters and sinks; it never
// touches a seeded random stream or a report writer, so every
// bit-identity guarantee of the measurement layer holds with telemetry
// on or off.
package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// histWindow bounds the recent-value window a histogram keeps for
// quantile snapshots; the Welford moments cover the full stream.
const histWindow = 512

// Counter is a monotonically increasing event count. All methods are
// safe for concurrent use and lock-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug but not checked — a
// counter is a convention, not a type system).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (e.g. worker-pool occupancy). All
// methods are safe for concurrent use and lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by delta and returns the new value — the return
// lets an instrumentation site record occupancy at the instant it
// claimed a slot without a second read racing other claimants.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a streaming distribution summary: single-pass Welford
// moments over the full stream (the paper's own §3.1.2 machinery) plus a
// bounded window of recent observations from which snapshot quantiles
// are computed through stats.Sample. Observe takes one short mutex; no
// allocation after the window fills.
type Histogram struct {
	mu   sync.Mutex
	w    stats.Welford
	ring []float64
	next int
	smp  stats.Sample // scratch for Snapshot; reused to stay allocation-lean
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	h.w.Add(x)
	if len(h.ring) < histWindow {
		h.ring = append(h.ring, x)
	} else {
		h.ring[h.next] = x
		h.next = (h.next + 1) % histWindow
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time summary of a histogram: Count,
// Mean, StdDev, Min, and Max describe every observation ever made; the
// quantiles describe the most recent Window observations.
type HistogramSnapshot struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Window int     `json:"window"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Snapshot summarizes the histogram. NaNs (empty or single-observation
// streams) are reported as zero so the snapshot always serializes to
// JSON.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.smp.Reset(h.ring)
	return HistogramSnapshot{
		Count:  h.w.N(),
		Mean:   nz(h.w.Mean()),
		StdDev: nz(h.w.StdDev()),
		Min:    nz(h.w.Min()),
		Max:    nz(h.w.Max()),
		Window: len(h.ring),
		P50:    nz(h.smp.Quantile(0.5)),
		P90:    nz(h.smp.Quantile(0.9)),
		P99:    nz(h.smp.Quantile(0.99)),
	}
}

// nz maps NaN to 0 for JSON encoding (encoding/json refuses NaN).
func nz(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	return x
}

// Registry is a named collection of metrics. Lookup is a read-locked map
// access; instrumentation sites resolve their metrics once (package-level
// vars) so the steady-state cost of an event is a single atomic.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// std is the process-wide default registry the harness instruments.
var std = NewRegistry()

// Default returns the process-wide registry served by /metrics.
func Default() *Registry { return std }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric in the registry. Maps serialize with
// sorted keys under encoding/json, giving /metrics a stable layout.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented, key-sorted JSON —
// the expvar-style payload /metrics serves.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
