package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a running telemetry endpoint. It serves:
//
//	/metrics       — expvar-style JSON snapshot of the default registry
//	/trace         — recent completed spans from the default tracer (JSON)
//	/debug/pprof/  — net/http/pprof profiling (heap, goroutine, CPU, ...)
//
// The endpoint is read-only: it observes the harness, it never steers
// it, so serving telemetry cannot perturb a measurement's results (the
// scrape costs wall-clock time only, which the harness never feeds back
// into reports or RNG streams).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry endpoint on addr (e.g. ":8080"; ":0" picks
// a free port — read it back with Addr). The server runs on its own
// goroutine until Close.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		std.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tracer.Recent())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
