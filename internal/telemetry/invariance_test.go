package telemetry_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/rules"
	"repro/internal/suite"
	"repro/internal/telemetry"
)

// The hard invariant of the telemetry layer, enforced here end to end:
// metrics and spans observe the harness but never steer it, so every
// byte of report, progress stream, journal, and analyzed result is
// identical with telemetry off, with it on, and across worker counts.

func identConfig(workers int) suite.Config {
	return suite.Config{
		Cluster:     cluster.PizDaint(),
		Collectives: []string{suite.Reduce, suite.Bcast},
		Ranks:       []int{2, 4},
		Bytes:       []int{8},
		MinRuns:     8,
		MaxRuns:     24,
		RelErr:      0.2,
		Seed:        7,
		Workers:     workers,
	}
}

func runSuiteBytes(t *testing.T, workers int) (report, progress []byte) {
	t.Helper()
	var prog bytes.Buffer
	res, err := suite.Run(context.Background(), identConfig(workers), &prog)
	if err != nil {
		t.Fatal(err)
	}
	var rep bytes.Buffer
	if err := res.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	return rep.Bytes(), prog.Bytes()
}

func TestTelemetryPreservesSuiteBitIdentity(t *testing.T) {
	telemetry.Disable()
	baseRep, baseProg := runSuiteBytes(t, 1)

	var sink bytes.Buffer
	telemetry.Enable(&sink)
	defer telemetry.Disable()
	for _, workers := range []int{1, 3} {
		rep, prog := runSuiteBytes(t, workers)
		if !bytes.Equal(rep, baseRep) {
			t.Errorf("telemetry on, workers=%d: report bytes diverged", workers)
		}
		if !bytes.Equal(prog, baseProg) {
			t.Errorf("telemetry on, workers=%d: progress bytes diverged", workers)
		}
	}
	// The comparison must not be vacuous: tracing really was live.
	if sink.Len() == 0 {
		t.Fatal("enabled tracer emitted no spans during the sweep")
	}
}

// identMeasure is a deterministic seeded measure source; every run from
// the same seed produces the same stream, so run/resume and on/off pairs
// are comparable byte for byte.
func identMeasure(seed uint64, interruptAt int, cancel context.CancelFunc) func() (float64, error) {
	rng := rand.New(rand.NewPCG(seed, 99))
	n := 0
	return func() (float64, error) {
		n++
		if interruptAt > 0 && n == interruptAt {
			cancel()
		}
		return 1 + rng.Float64(), nil
	}
}

func identPlan() bench.Plan {
	return bench.Plan{
		Warmup:     2,
		MinSamples: 15,
		MaxSamples: 40,
		RelErr:     0.001, // strict: the adaptive loop runs to MaxSamples
		BatchSize:  5,
	}
}

func identManifest(t *testing.T) campaign.Manifest {
	t.Helper()
	m, err := campaign.NewManifest("ident", 1,
		struct {
			System string `json:"system"`
		}{System: "seeded"},
		nil, rules.Environment{Processor: "simulated"})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runInterruptedCampaign runs a campaign that cancels itself after
// interruptAt measure calls, then resumes it to completion, returning
// the final journal bytes and the analyzed result rendered to a string
// (NaN-safe, unlike reflect.DeepEqual).
func runInterruptedCampaign(t *testing.T, interruptAt int) ([]byte, string) {
	t.Helper()
	dir := t.TempDir()
	man := identManifest(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := campaign.Run(ctx, dir, man, identPlan(), identMeasure(1, interruptAt, cancel))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != bench.StopInterrupted {
		t.Fatalf("stop = %v, want interrupted (tune interruptAt=%d)", res.Stop, interruptAt)
	}

	res, _, err = campaign.Resume(context.Background(), dir, man, identPlan(),
		identMeasure(1, 0, nil), campaign.ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jb, err := os.ReadFile(filepath.Join(dir, campaign.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	return jb, fmt.Sprintf("%+v", res)
}

func TestTelemetryPreservesCampaignBitIdentity(t *testing.T) {
	const interruptAt = 20

	telemetry.Disable()
	baseJournal, baseResult := runInterruptedCampaign(t, interruptAt)

	var sink bytes.Buffer
	telemetry.Enable(&sink)
	defer telemetry.Disable()
	journal, result := runInterruptedCampaign(t, interruptAt)

	if !bytes.Equal(journal, baseJournal) {
		t.Error("telemetry changed the journal bytes of an interrupted+resumed campaign")
	}
	if result != baseResult {
		t.Errorf("telemetry changed the analyzed result:\noff: %s\non:  %s", baseResult, result)
	}
	if sink.Len() == 0 {
		t.Fatal("enabled tracer emitted no spans during the campaign")
	}
}

// TestTelemetrySmoke is the end-to-end check `make telemetry-smoke`
// runs: generate real harness activity, serve the endpoint, scrape it,
// and assert the advertised metric names and routes are live.
func TestTelemetrySmoke(t *testing.T) {
	telemetry.Enable(nil)
	defer telemetry.Disable()

	// Generate activity through every instrumented layer: a sweep
	// (suite → bench → cluster) and a journaled campaign (fsync path).
	if _, err := suite.Run(context.Background(), identConfig(2), io.Discard); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := campaign.Run(context.Background(), dir, identManifest(t),
		identPlan(), identMeasure(1, 0, nil)); err != nil {
		t.Fatal(err)
	}

	srv, err := telemetry.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var snap telemetry.Snapshot
	getJSON(t, base+"/metrics", &snap)
	for _, name := range []string{"bench.samples", "bench.warmups", "suite.configs", "campaign.records", "cluster.messages"} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %q = %d, want > 0", name, snap.Counters[name])
		}
	}
	for _, name := range []string{"suite.occupancy", "suite.config_us", "campaign.fsync_us", "bench.analysis_us"} {
		if snap.Histograms[name].Count <= 0 {
			t.Errorf("histogram %q empty", name)
		}
	}
	if _, ok := snap.Gauges["suite.workers_active"]; !ok {
		t.Error("gauge suite.workers_active not registered")
	}
	if occ := snap.Histograms["suite.occupancy"]; occ.Max > 2 {
		t.Errorf("occupancy max = %g with 2 workers", occ.Max)
	}

	var spans []telemetry.Span
	getJSON(t, base+"/trace", &spans)
	if len(spans) == 0 {
		t.Fatal("/trace returned no spans")
	}
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"campaign", "sweep", "config", "collection", "analysis"} {
		if !names[want] {
			t.Errorf("trace lacks a %q span (have %v)", want, names)
		}
	}

	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
