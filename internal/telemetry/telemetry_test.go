package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("second lookup returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(7)
	if now := g.Add(2); now != 9 {
		t.Errorf("Add returned %d, want 9", now)
	}
	g.Add(-3)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %d, want 6", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Window != 100 {
		t.Fatalf("count=%d window=%d, want 100/100", s.Count, s.Window)
	}
	if s.Mean != 50.5 || s.Min != 1 || s.Max != 100 {
		t.Errorf("mean=%g min=%g max=%g", s.Mean, s.Min, s.Max)
	}
	if s.P50 < 45 || s.P50 > 56 || s.P99 < 95 {
		t.Errorf("p50=%g p99=%g implausible", s.P50, s.P99)
	}
}

func TestHistogramWindowBounded(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 3*histWindow; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 3*histWindow {
		t.Errorf("count = %d, want %d", s.Count, 3*histWindow)
	}
	if s.Window != histWindow {
		t.Errorf("window = %d, want %d", s.Window, histWindow)
	}
	// Quantiles come from the most recent window only.
	if s.P50 < float64(2*histWindow) {
		t.Errorf("p50 = %g predates the recent window", s.P50)
	}
	// Moments cover the full stream.
	if s.Min != 0 {
		t.Errorf("min = %g, want 0 (full stream)", s.Min)
	}
}

func TestEmptyHistogramSerializes(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty")
	r.Histogram("one").Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON with NaN-prone histograms: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Histograms["empty"].Count != 0 || snap.Histograms["empty"].Mean != 0 {
		t.Errorf("empty histogram snapshot = %+v", snap.Histograms["empty"])
	}
	if snap.Histograms["one"].StdDev != 0 {
		t.Errorf("single-observation stddev = %g, want 0 (NaN sanitized)", snap.Histograms["one"].StdDev)
	}
}

func TestTracerDisabledIsFree(t *testing.T) {
	tr := NewTracer()
	if sp := tr.Start(0, "x", ""); sp != nil {
		t.Fatal("disabled tracer returned a live span")
	}
	var nilSpan *ActiveSpan
	nilSpan.End() // must not panic
	if nilSpan.ID() != 0 {
		t.Error("nil span ID != 0")
	}
	if len(tr.Recent()) != 0 {
		t.Error("disabled tracer recorded spans")
	}
}

func TestTracerRecordsHierarchy(t *testing.T) {
	tr := NewTracer()
	var sink bytes.Buffer
	tr.Enable(&sink)
	defer tr.Disable()

	parent := tr.Start(0, "sweep", "2 configurations")
	child := tr.Start(parent.ID(), "config", "reduce p=2")
	child.End()
	child.End() // idempotent
	parent.End()

	spans := tr.Recent()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Children end first, so the ring holds child then parent.
	if spans[0].Name != "config" || spans[0].Parent != parent.ID() {
		t.Errorf("child span = %+v", spans[0])
	}
	if spans[1].Name != "sweep" || spans[1].Parent != 0 {
		t.Errorf("root span = %+v", spans[1])
	}
	if spans[0].DurUs < 0 || spans[1].DurUs < spans[0].DurUs {
		t.Errorf("durations: child %d, parent %d", spans[0].DurUs, spans[1].DurUs)
	}

	// The sink got one JSON object per line.
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink holds %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var sp Span
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Errorf("sink line %q: %v", line, err)
		}
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer()
	tr.Enable(nil)
	defer tr.Disable()
	for i := 0; i < traceRing+10; i++ {
		tr.Start(0, "s", "").End()
	}
	spans := tr.Recent()
	if len(spans) != traceRing {
		t.Fatalf("ring holds %d, want %d", len(spans), traceRing)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].ID <= spans[i-1].ID {
			t.Fatalf("ring not oldest-first at %d: %d then %d", i, spans[i-1].ID, spans[i].ID)
		}
	}
}

func TestStartSpanContextPropagation(t *testing.T) {
	tr := DefaultTracer()
	tr.Enable(nil)
	defer tr.Disable()

	ctx := context.Background()
	ctx1, root := StartSpan(ctx, "campaign", "dir")
	if root == nil {
		t.Fatal("enabled StartSpan returned nil")
	}
	if SpanFromContext(ctx1) != root.ID() {
		t.Error("context does not carry the root span")
	}
	ctx2, child := StartSpan(ctx1, "collection", "")
	child.End()
	root.End()
	if SpanFromContext(ctx2) != child.ID() {
		t.Error("context does not carry the child span")
	}
	spans := tr.Recent()
	last := spans[len(spans)-1]
	prev := spans[len(spans)-2]
	if prev.Parent != last.ID {
		t.Errorf("collection span parent = %d, want %d", prev.Parent, last.ID)
	}

	// Disabled: same context back, nil span, no state.
	tr.Disable()
	ctx3, sp := StartSpan(ctx, "x", "")
	if ctx3 != ctx || sp != nil {
		t.Error("disabled StartSpan allocated")
	}
}

// TestRegistryConcurrent hammers every metric type, the snapshot path,
// and the tracer from many goroutines at once; it exists to run under
// the race detector (make race).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()
	tr.Enable(nil)
	defer tr.Disable()

	const goroutines = 8
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c").Inc()
				occ := r.Gauge("g").Add(1)
				r.Histogram("h").Observe(float64(occ))
				sp := tr.Start(0, "work", "")
				if i%50 == 0 {
					_ = r.Snapshot()
					_ = tr.Recent()
					var buf bytes.Buffer
					if err := r.WriteJSON(&buf); err != nil {
						t.Error(err)
					}
				}
				sp.End()
				r.Gauge("g").Add(-1)
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("c").Value(); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0 after balanced adds", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
}
