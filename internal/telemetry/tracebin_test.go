package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func traceSpans(n int) []Span {
	names := []string{"campaign", "sweep", "config", "collection", "analysis"}
	spans := make([]Span, n)
	for i := range spans {
		spans[i] = Span{
			ID:      SpanID(i + 1),
			Parent:  SpanID(i / 2),
			Name:    names[i%len(names)],
			Detail:  fmt.Sprintf("cfg-%02d", i%7),
			StartUs: int64(1000 + 37*i),
			DurUs:   int64(5 + i%11),
		}
	}
	return spans
}

func TestBinaryTraceRoundTrip(t *testing.T) {
	spans := traceSpans(300) // crosses the chunk width
	var buf bytes.Buffer
	bw := NewBinaryTraceWriter(&buf)
	for _, sp := range spans {
		bw.WriteSpan(sp)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if !IsBinaryTrace(buf.Bytes()) {
		t.Fatal("output does not sniff as a binary trace")
	}
	got, torn := ReadBinaryTrace(buf.Bytes())
	if torn {
		t.Fatal("clean trace read back torn")
	}
	if len(got) != len(spans) {
		t.Fatalf("%d spans, want %d", len(got), len(spans))
	}
	for i := range got {
		if got[i] != spans[i] {
			t.Fatalf("span %d = %+v, want %+v", i, got[i], spans[i])
		}
	}
}

// TestBinaryTraceCompression pins the size win over JSONL: ≥5× on a
// realistic repetitive span stream.
func TestBinaryTraceCompression(t *testing.T) {
	spans := traceSpans(1000)
	var jsonl, bin bytes.Buffer
	for _, sp := range spans {
		b, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		jsonl.Write(append(b, '\n'))
	}
	bw := NewBinaryTraceWriter(&bin)
	for _, sp := range spans {
		bw.WriteSpan(sp)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*5 > jsonl.Len() {
		t.Fatalf("binary trace %d bytes vs JSONL %d: ratio %.2f < 5",
			bin.Len(), jsonl.Len(), float64(jsonl.Len())/float64(bin.Len()))
	}
	t.Logf("1000 spans: JSONL %d bytes, binary %d bytes (%.1f×)",
		jsonl.Len(), bin.Len(), float64(jsonl.Len())/float64(bin.Len()))
}

// TestBinaryTraceTornAndCorrupt: truncations and bit flips must never
// panic, never invent spans, and always be reported torn unless the
// mutation landed beyond the verified prefix.
func TestBinaryTraceTornAndCorrupt(t *testing.T) {
	spans := traceSpans(200)
	var buf bytes.Buffer
	bw := NewBinaryTraceWriter(&buf)
	for _, sp := range spans {
		bw.WriteSpan(sp)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut <= len(data); cut += 7 {
		got, _ := ReadBinaryTrace(data[:cut])
		if len(got) > len(spans) {
			t.Fatalf("cut %d: invented spans", cut)
		}
		for i := range got {
			if got[i] != spans[i] {
				t.Fatalf("cut %d: span %d corrupted", cut, i)
			}
		}
	}
	for pos := 0; pos < len(data); pos += 3 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x20
		got, _ := ReadBinaryTrace(mut)
		if len(got) > len(spans) {
			t.Fatalf("pos %d: invented spans", pos)
		}
	}
}

// TestBinaryTraceConcatenatedSessions: the trace file is append-mode,
// so a resumed campaign concatenates whole traces; the reader must
// treat the embedded magic as a session separator.
func TestBinaryTraceConcatenatedSessions(t *testing.T) {
	spans := traceSpans(10)
	var buf bytes.Buffer
	for s := 0; s < 3; s++ {
		bw := NewBinaryTraceWriter(&buf)
		for _, sp := range spans {
			bw.WriteSpan(sp)
		}
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, torn := ReadBinaryTrace(buf.Bytes())
	if torn || len(got) != 3*len(spans) {
		t.Fatalf("torn=%v spans=%d, want %d clean", torn, len(got), 3*len(spans))
	}
}

// TestTracerBinarySink wires the sink through the tracer end to end.
func TestTracerBinarySink(t *testing.T) {
	tr := NewTracer()
	var buf bytes.Buffer
	bw := NewBinaryTraceWriter(&buf)
	tr.EnableSink(bw)
	defer tr.Disable()
	root := tr.Start(0, "campaign", "e2e")
	child := tr.Start(root.ID(), "collection", "cfg-1")
	child.End()
	root.End()
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, torn := ReadBinaryTrace(buf.Bytes())
	if torn || len(got) != 2 {
		t.Fatalf("torn=%v spans=%d, want 2 clean", torn, len(got))
	}
	if got[0].Name != "collection" || got[1].Name != "campaign" {
		t.Fatalf("span order/names: %+v", got)
	}
	if got[0].Parent != got[1].ID {
		t.Fatal("child span lost its parent link")
	}
}
